"""Integration tests: end-to-end behaviour of the full system."""

from __future__ import annotations

import pytest

from repro.core.config import MamutConfig
from repro.core.mamut import MamutController
from repro.manager.factories import heuristic_factory, mamut_factory, static_factory
from repro.manager.orchestrator import Orchestrator
from repro.manager.runner import ExperimentRunner
from repro.manager.scenario import scenario_one, scenario_two
from repro.manager.session import TranscodingSession
from repro.metrics.qos import qos_violation_pct
from repro.platform.server import MulticoreServer
from repro.video.catalog import make_sequence
from repro.video.request import TranscodingRequest


class TestSingleVideoEndToEnd:
    def test_mamut_learns_to_serve_one_hr_video(self):
        """Over a long single-video run, the second half must violate QoS far
        less often than the first half (the controller is learning)."""
        sequence = make_sequence("Cactus", num_frames=900, seed=0)
        request = TranscodingRequest(user_id="u", sequence=sequence)
        controller = MamutController(MamutConfig.for_request(request, seed=0))
        session = TranscodingSession(request, controller)
        result = Orchestrator([session], server=MulticoreServer()).run()
        records = result.records_by_session["u"]
        first_half = qos_violation_pct(records[:300])
        second_half = qos_violation_pct(records[-300:])
        assert second_half < first_half
        assert second_half < 50.0

    def test_static_max_configuration_meets_realtime_for_one_hr_video(self):
        specs = scenario_one(1, 0, num_frames=60, seed=0)
        runner = ExperimentRunner(seed=0)
        result = runner.run("static", static_factory(37, 12, 3.2), specs)
        assert result.qos_violation_pct < 5.0
        assert result.mean_fps > 24.0


class TestMultiUserEndToEnd:
    def test_full_pipeline_runs_for_a_mixed_workload(self):
        specs = scenario_two(1, 1, followers=1, frames_per_video=48, seed=0)
        runner = ExperimentRunner(seed=0)
        results = runner.compare(
            {"MAMUT": mamut_factory(), "Heuristic": heuristic_factory()},
            specs,
            warmup_videos=1,
        )
        for result in results.values():
            assert result.mean_power_w > 40.0
            assert 0.0 <= result.qos_violation_pct <= 100.0
            assert result.mean_threads >= 1.0
            assert 1.6 - 1e-6 <= result.mean_frequency_ghz <= 3.2 + 1e-6

    def test_saturation_degrades_qos_for_everyone(self):
        """Paper Sec. V-B/V-C: when the machine saturates, violations rise."""
        runner = ExperimentRunner(seed=1)
        light = runner.run(
            "mamut-light", mamut_factory(), scenario_one(1, 0, num_frames=96, seed=1)
        )
        heavy = runner.run(
            "mamut-heavy", mamut_factory(), scenario_one(5, 0, num_frames=96, seed=1)
        )
        assert heavy.qos_violation_pct > light.qos_violation_pct

    def test_heuristic_runs_at_higher_frequency_than_mamut(self):
        """Table I shape: the heuristic pins the frequency near the maximum,
        MAMUT trades threads for frequency."""
        specs = scenario_one(1, 1, num_frames=240, seed=2)
        runner = ExperimentRunner(seed=2)
        results = runner.compare(
            {"Heuristic": heuristic_factory(), "MAMUT": mamut_factory()},
            specs,
            warmup_videos=1,
        )
        assert (
            results["Heuristic"].mean_frequency_ghz
            > results["MAMUT"].mean_frequency_ghz - 0.05
        )

    def test_mamut_saves_power_compared_to_the_heuristic(self):
        """Headline claim: MAMUT reduces power versus the heuristic approach."""
        specs = scenario_one(1, 1, num_frames=240, seed=3)
        runner = ExperimentRunner(seed=3)
        results = runner.compare(
            {"Heuristic": heuristic_factory(), "MAMUT": mamut_factory()},
            specs,
            warmup_videos=1,
        )
        assert results["MAMUT"].mean_power_w < results["Heuristic"].mean_power_w

    def test_power_cap_is_respected_on_average(self):
        specs = scenario_one(2, 2, num_frames=96, seed=4)
        runner = ExperimentRunner(power_cap_w=120.0, seed=4)
        result = runner.run("mamut", mamut_factory(power_cap_w=120.0), specs)
        assert result.mean_power_w < 135.0

    def test_reproducibility_of_a_full_comparison(self):
        specs = scenario_one(1, 1, num_frames=72, seed=5)
        a = ExperimentRunner(seed=5).run("MAMUT", mamut_factory(), specs)
        b = ExperimentRunner(seed=5).run("MAMUT", mamut_factory(), specs)
        assert a.mean_power_w == pytest.approx(b.mean_power_w)
        assert a.mean_fps == pytest.approx(b.mean_fps)
        assert a.qos_violation_pct == pytest.approx(b.qos_violation_pct)
