"""Unit tests for repro.video.buffer (client playback model)."""

from __future__ import annotations

import pytest

from repro.errors import VideoError
from repro.video.buffer import PlaybackBuffer, playback_stats_from_records
from tests.test_metrics import record


class TestPlaybackBuffer:
    def test_fast_production_never_stalls(self):
        buffer = PlaybackBuffer(target_fps=24.0, startup_frames=4)
        stats = buffer.simulate([1.0 / 48.0] * 100)
        assert stats.stall_count == 0
        assert stats.stall_time_s == 0.0
        assert stats.stall_ratio == 0.0
        assert stats.frames == 100

    def test_slow_production_stalls(self):
        buffer = PlaybackBuffer(target_fps=24.0, startup_frames=4)
        stats = buffer.simulate([1.0 / 12.0] * 100)
        assert stats.stall_count >= 1
        assert stats.stall_time_s > 0.0
        assert stats.stall_ratio > 0.0

    def test_buffered_frames_absorb_a_temporary_dip(self):
        """Paper Sec. III-D-a: spare frames encoded above the target rate can
        compensate a temporary drop below the target."""
        fast, slow = 1.0 / 60.0, 1.0 / 20.0
        times = [fast] * 60 + [slow] * 5 + [fast] * 60
        stats = PlaybackBuffer(target_fps=24.0, startup_frames=8).simulate(times)
        assert stats.stall_count == 0

    def test_sustained_slowdown_cannot_be_absorbed(self):
        fast, slow = 1.0 / 60.0, 1.0 / 12.0
        times = [fast] * 30 + [slow] * 200
        stats = PlaybackBuffer(target_fps=24.0, startup_frames=8).simulate(times)
        assert stats.stall_count >= 1

    def test_startup_delay_accounts_for_initial_buffering(self):
        buffer = PlaybackBuffer(target_fps=24.0, startup_frames=10)
        stats = buffer.simulate([0.1] * 50)
        assert stats.startup_delay_s == pytest.approx(1.0)

    def test_max_buffer_tracks_overproduction(self):
        stats = PlaybackBuffer(target_fps=24.0, startup_frames=4).simulate([1.0 / 96.0] * 50)
        assert stats.max_buffer_frames > 0

    def test_validation(self):
        with pytest.raises(VideoError):
            PlaybackBuffer(target_fps=0.0)
        with pytest.raises(VideoError):
            PlaybackBuffer(startup_frames=0)
        buffer = PlaybackBuffer()
        with pytest.raises(VideoError):
            buffer.simulate([])
        with pytest.raises(VideoError):
            buffer.simulate([0.0, 0.1])


class TestPlaybackFromRecords:
    def test_stats_from_frame_records(self):
        records = [record(step=i, fps=30.0) for i in range(50)]
        stats = playback_stats_from_records(records)
        assert stats.frames == 50
        assert stats.stall_count == 0

    def test_slow_records_stall(self):
        records = [record(step=i, fps=12.0) for i in range(50)]
        stats = playback_stats_from_records(records)
        assert stats.stall_count >= 1

    def test_empty_records_rejected(self):
        with pytest.raises(VideoError):
            playback_stats_from_records([])
