"""Unit tests for repro.hevc.wpp."""

from __future__ import annotations

import pytest

from repro.errors import EncodingError
from repro.hevc.wpp import WppModel


@pytest.fixture
def model() -> WppModel:
    return WppModel()


class TestGeometry:
    def test_ctu_rows_1080p(self, model):
        assert model.ctu_rows(1080) == 17

    def test_ctu_rows_480p(self, model):
        assert model.ctu_rows(480) == 8

    def test_ctu_cols(self, model):
        assert model.ctu_cols(1920) == 30
        assert model.ctu_cols(832) == 13

    def test_max_useful_threads_equals_rows(self, model):
        assert model.max_useful_threads(1080) == 17
        assert model.max_useful_threads(480) == 8

    def test_invalid_dimensions_raise(self, model):
        with pytest.raises(EncodingError):
            model.ctu_rows(0)
        with pytest.raises(EncodingError):
            model.ctu_cols(-5)


class TestSpeedup:
    def test_single_thread_is_one(self, model):
        assert model.speedup(1, 1920, 1080) == pytest.approx(1.0)

    def test_wpp_disabled_is_one(self, model):
        assert model.speedup(8, 1920, 1080, wpp=False) == pytest.approx(1.0)

    def test_monotone_up_to_row_count_hr(self, model):
        speedups = [model.speedup(n, 1920, 1080) for n in range(1, 13)]
        assert all(b >= a for a, b in zip(speedups, speedups[1:]))

    def test_speedup_never_exceeds_thread_count(self, model):
        for n in range(1, 20):
            assert model.speedup(n, 1920, 1080) <= n

    def test_hr_speedup_at_ten_threads_is_substantial(self, model):
        assert 5.0 <= model.speedup(10, 1920, 1080) <= 9.0

    def test_lr_speedup_saturates_low(self, model):
        assert model.speedup(8, 832, 480) < 4.5

    def test_hr_saturation_near_twelve_threads(self, model):
        """Paper Sec. V-A: saturation at ~12 threads for 1080p."""
        assert 9 <= model.saturation_threads(1920, 1080) <= 14

    def test_lr_saturation_near_five_threads(self, model):
        """Paper Sec. V-A: saturation at ~5 threads for 832x480."""
        assert 3 <= model.saturation_threads(832, 480) <= 7

    def test_invalid_thread_count_raises(self, model):
        with pytest.raises(EncodingError):
            model.speedup(0, 1920, 1080)


class TestEfficiency:
    def test_efficiency_bounded(self, model):
        for n in (1, 2, 4, 8, 12, 16):
            assert 0.0 < model.efficiency(n, 1920, 1080) <= 1.0

    def test_efficiency_decreases_with_threads(self, model):
        efficiencies = [model.efficiency(n, 1920, 1080) for n in (1, 4, 8, 12)]
        assert all(b <= a for a, b in zip(efficiencies, efficiencies[1:]))
