"""Trace analytics and artifact provenance (repro.telemetry.analysis/.provenance).

The headline property pinned here: for ANY seeded cluster run — faults on
or off, scalar or batch engine — the view reconstructed purely from the
span stream reconciles exactly with the run's :class:`ClusterSummary`
ledger: terminal counts, retry totals, and the queue-wait population down
to identical mean/max/p50/p95/p99 floats.  The trace and the ledger are
two independent bookkeeping paths through the orchestrator, so agreement
is a strong end-to-end check on both.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.cluster import (
    CapacityThreshold,
    ClusterOrchestrator,
    FaultConfig,
    FlashCrowdTraffic,
    WorkloadGenerator,
)
from repro.manager.factories import static_factory
from repro.metrics.aggregate import linear_percentile
from repro.metrics.cluster import ClusterSummary
from repro.telemetry import (
    LatencyStats,
    ListTraceSink,
    TelemetryConfig,
    analyze_trace,
    load_spans,
    provenance_mismatches,
    provenance_of,
    stamp_provenance,
)

FAULTS = FaultConfig(
    crash_mtbf_steps=25.0,
    crash_mttr_steps=5.0,
    max_retries=3,
    retry_backoff_steps=1,
    seed=9,
)


def run_traced(seed: int, engine: str = "scalar", faults: FaultConfig | None = None):
    workload = WorkloadGenerator(
        FlashCrowdTraffic(0.3, peak_multiplier=6.0, start=8, duration=10),
        seed=seed,
        frames_per_video=12,
        patience_steps=8,
    )
    cluster = ClusterOrchestrator(
        3,
        workload,
        admission=CapacityThreshold(max_sessions_per_server=3, max_queue=5),
        controller_factory=static_factory(qp=32, threads=4, frequency_ghz=3.2),
        seed=seed,
        engine=engine,
        faults=faults,
    )
    sink = ListTraceSink()
    result = cluster.run(40, telemetry=TelemetryConfig(trace_sink=sink))
    return sink, result.summary()


# -- lifecycle reconstruction --------------------------------------------------------


class TestLifecycles:
    def test_reconstruction_basics(self):
        sink, summary = run_traced(seed=0)
        analysis = analyze_trace(sink)
        assert analysis.errors == []
        assert analysis.arrivals == summary.arrivals
        assert analysis.span_count == len(sink.spans)
        served = analysis.served()
        assert served and all(l.terminal_kind == "served" for l in served)
        # First-dispatch metadata is populated for everything admitted.
        for lifecycle in served:
            assert lifecycle.queue_wait_steps is not None
            assert lifecycle.server is not None
            assert lifecycle.service_steps >= 0
            assert lifecycle.total_steps >= lifecycle.service_steps

    def test_queued_requests_marked(self):
        sink, _ = run_traced(seed=0)
        analysis = analyze_trace(sink)
        queued = [l for l in analysis.lifecycles.values() if l.queued]
        assert queued
        # A request that waited in the queue has a positive wait when admitted.
        waited_and_served = [
            l for l in queued if l.terminal_kind == "served"
        ]
        assert all(l.queue_wait_steps > 0 for l in waited_and_served)

    def test_truncated_stream_reports_open_lifecycles(self):
        sink, _ = run_traced(seed=0)
        # Chop the stream mid-run: some lifecycles never reach a terminal.
        analysis = analyze_trace(sink.spans[: len(sink.spans) // 2])
        assert any("no terminal span" in error for error in analysis.errors)

    def test_malformed_streams_are_reported_not_fatal(self):
        spans = [
            {"kind": "dispatched", "step": 1, "request": "ghost", "server": 0},
            {"kind": "arrival", "step": 0, "request": "u1", "service_class": "HR"},
            {"kind": "arrival", "step": 1, "request": "u1", "service_class": "HR"},
            {"kind": "served", "step": 5, "request": "u1", "frames": 3,
             "completed": True},
            {"kind": "served", "step": 6, "request": "u1", "frames": 3,
             "completed": True},
        ]
        analysis = analyze_trace(spans)
        assert any("before any arrival" in e for e in analysis.errors)
        assert any("duplicate arrival" in e for e in analysis.errors)
        assert any("after terminal" in e for e in analysis.errors)


class TestRetryAccounting:
    def test_crash_retry_overhead(self):
        sink, summary = run_traced(seed=3, faults=FAULTS)
        analysis = analyze_trace(sink)
        assert summary.server_crashes > 0  # the scenario must exercise faults
        assert analysis.retried == summary.retried
        interrupted = [
            l for l in analysis.lifecycles.values() if l.interruptions > 0
        ]
        assert interrupted
        for lifecycle in interrupted:
            # Retried requests keep their original queue wait and pay the
            # crash gap on top.
            assert lifecycle.retry_wait_steps >= 0
            assert len(lifecycle.servers) == 1 + lifecycle.retries

    def test_fault_timeline_matches_ledger(self):
        sink, summary = run_traced(seed=3, faults=FAULTS)
        analysis = analyze_trace(sink)
        assert analysis.fault_counts().get("crash", 0) == summary.server_crashes
        # Fault markers never leak into per-request lifecycles.
        assert not any(
            request.startswith("server-") for request in analysis.lifecycles
        )


# -- the reconciliation property -----------------------------------------------------


class TestReconciliation:
    @pytest.mark.parametrize("engine", ["scalar", "batch"])
    @pytest.mark.parametrize("faults", [None, FAULTS], ids=["clean", "faulty"])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 11, 23])
    def test_trace_reconciles_with_summary(self, seed, engine, faults):
        sink, summary = run_traced(seed=seed, engine=engine, faults=faults)
        analysis = analyze_trace(sink)
        assert analysis.reconcile(summary) == []

    def test_percentiles_match_summary_exactly(self):
        sink, summary = run_traced(seed=2)
        analysis = analyze_trace(sink)
        stats = analysis.wait_stats()
        assert stats.p50 == summary.p50_queue_wait_steps
        assert stats.p95 == summary.p95_queue_wait_steps
        assert stats.p99 == summary.p99_queue_wait_steps
        assert stats.mean == summary.mean_queue_wait_steps
        assert stats.max == summary.max_queue_wait_steps

    def test_mismatch_is_detected(self):
        sink, summary = run_traced(seed=0)
        analysis = analyze_trace(sink)
        doctored = ClusterSummary.from_dict(
            {**summary.to_dict(), "rejected": summary.rejected + 1}
        )
        mismatches = analysis.reconcile(doctored)
        assert any("rejected" in m for m in mismatches)

    def test_class_and_server_slices_partition_the_population(self):
        sink, summary = run_traced(seed=1)
        analysis = analyze_trace(sink)
        by_class = analysis.wait_stats_by_class()
        by_server = analysis.wait_stats_by_server()
        assert sum(s.count for s in by_class.values()) == summary.admitted
        assert sum(s.count for s in by_server.values()) == summary.admitted


# -- span loading and stats ----------------------------------------------------------


class TestLoadSpans:
    def test_jsonl_round_trip(self, tmp_path):
        sink, summary = run_traced(seed=0)
        path = tmp_path / "trace.jsonl"
        with path.open("w") as handle:
            for span in sink.spans:
                handle.write(json.dumps(span) + "\n")
        assert load_spans(str(path)) == sink.spans
        assert analyze_trace(str(path)).reconcile(summary) == []

    def test_bad_jsonl_names_the_line(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"kind": "arrival", "step": 0, "request": "u"}\nnot json\n')
        with pytest.raises(ValueError, match="broken.jsonl:2"):
            load_spans(str(path))

    def test_latency_stats_of_values(self):
        stats = LatencyStats.of([0, 1, 2, 3, 4])
        assert stats.count == 5
        assert stats.mean == 2.0
        assert stats.p50 == linear_percentile([0, 1, 2, 3, 4], 50.0) == 2.0
        assert stats.max == 4.0
        empty = LatencyStats.of([])
        assert empty.count == 0 and empty.mean == 0.0

    def test_to_dict_is_json_ready(self):
        sink, _ = run_traced(seed=0)
        digest = analyze_trace(sink).to_dict()
        json.dumps(digest)  # must not raise
        assert digest["arrivals"] > 0
        assert "queue_wait" in digest and "p95" in digest["queue_wait"]


# -- linear_percentile ---------------------------------------------------------------


class TestLinearPercentile:
    def test_matches_known_values(self):
        values = [1, 2, 3, 4]
        assert linear_percentile(values, 0.0) == 1.0
        assert linear_percentile(values, 100.0) == 4.0
        assert linear_percentile(values, 50.0) == 2.5
        assert linear_percentile([5], 75.0) == 5.0
        assert linear_percentile([], 50.0) == 0.0

    def test_order_independent(self):
        assert linear_percentile([3, 1, 2], 50.0) == 2.0

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            linear_percentile([1.0], 101.0)


# -- provenance ----------------------------------------------------------------------


class TestProvenance:
    def payload(self, **overrides):
        base = stamp_provenance(
            {"metric": 1.0}, kind="cluster", seed=7, config={"servers": 3}
        )
        base["provenance"].update(overrides)
        return base

    def test_stamp_and_read_back(self):
        payload = self.payload()
        block = provenance_of(payload)
        assert block["kind"] == "cluster"
        assert block["seed"] == 7
        assert block["config"] == {"servers": 3}
        assert block["schema_version"] >= 1

    def test_identical_runs_are_comparable(self):
        refusals, warnings = provenance_mismatches(self.payload(), self.payload())
        assert refusals == [] and warnings == []

    @pytest.mark.parametrize(
        "field,value",
        [("kind", "faults"), ("seed", 8), ("config", {"servers": 4}),
         ("schema_version", 999)],
    )
    def test_strict_field_difference_refuses(self, field, value):
        refusals, _ = provenance_mismatches(
            self.payload(), self.payload(**{field: value})
        )
        assert any(field in refusal for refusal in refusals)

    def test_environment_difference_only_warns(self):
        refusals, warnings = provenance_mismatches(
            self.payload(), self.payload(python="0.0.0", machine="vax")
        )
        assert refusals == []
        assert len(warnings) == 2

    def test_missing_block_refuses(self):
        refusals, _ = provenance_mismatches({"metric": 1.0}, self.payload())
        assert any("missing provenance" in refusal for refusal in refusals)
