"""Scalar/batch engine equivalence for the cluster stepping hot path.

The batch engine's contract is *bitwise* seed-for-seed equivalence: the same
``(workload seed, policies, cluster seed)`` must produce identical frame
records, power traces, admission ledgers and summaries on both engines.
These tests compare complete :class:`~repro.cluster.cluster.ClusterResult`
objects with plain ``==`` (dataclass equality → exact float equality).
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    AlwaysAdmit,
    BatchStepper,
    CapacityThreshold,
    ClusterOrchestrator,
    FlashCrowdTraffic,
    PoissonTraffic,
    PowerHeadroom,
    ReactiveThreshold,
    RoundRobin,
    WorkloadGenerator,
)
from repro.cluster.brownout import BrownoutController
from repro.cluster.dispatch import PowerAware
from repro.errors import ClusterError, ScenarioError
from repro.manager.factories import (
    heuristic_factory,
    mamut_factory,
    monoagent_factory,
    static_factory,
)
from repro.manager.orchestrator import Orchestrator
from repro.manager.session import TranscodingSession
from repro.platform.server import MulticoreServer
from repro.platform.topology import CpuTopology
from repro.video.catalog import random_sequence
from repro.video.request import TranscodingRequest
from repro.video.sequence import ResolutionClass


def run_cluster(engine, *, seed=3, servers=3, rate=1.0, duration=30,
                admission=None, dispatcher=None, controller_factory=None,
                server_factory=MulticoreServer, drain=True,
                max_drain_steps=None, **workload_kwargs):
    workload = WorkloadGenerator(
        PoissonTraffic(rate), seed=seed, frames_per_video=10, **workload_kwargs
    )
    cluster = ClusterOrchestrator(
        servers,
        workload,
        admission=admission,
        dispatcher=dispatcher,
        controller_factory=controller_factory,
        server_factory=server_factory,
        seed=seed,
        engine=engine,
    )
    return cluster.run(duration, drain=drain, max_drain_steps=max_drain_steps)


def assert_identical(a, b):
    assert a.records_by_server == b.records_by_server
    assert a.samples_by_server == b.samples_by_server
    assert (a.arrivals, a.admitted, a.rejected, a.abandoned) == (
        b.arrivals,
        b.admitted,
        b.rejected,
        b.abandoned,
    )
    assert a.queue_waits == b.queue_waits
    assert a.steps == b.steps
    assert a.summary() == b.summary()


class TestEngineEquivalence:
    # Policies are stateful (e.g. RoundRobin's cursor), so every comparison
    # builds fresh keyword arguments per run.

    def test_static_controllers_default_policies(self):
        kwargs = lambda: dict(
            controller_factory=static_factory(qp=32, threads=4, frequency_ghz=3.2)
        )
        assert_identical(run_cluster("scalar", **kwargs()), run_cluster("batch", **kwargs()))

    def test_mamut_controllers_default_policies(self):
        assert_identical(run_cluster("scalar"), run_cluster("batch"))

    def test_mamut_power_headroom_power_aware(self):
        kwargs = lambda: dict(
            admission=PowerHeadroom(), dispatcher=PowerAware(), rate=1.5
        )
        assert_identical(run_cluster("scalar", **kwargs()), run_cluster("batch", **kwargs()))

    def test_chip_wide_heuristic_controllers(self):
        kwargs = lambda: dict(
            controller_factory=heuristic_factory(),
            admission=AlwaysAdmit(),
            dispatcher=RoundRobin(),
            rate=0.8,
        )
        assert_identical(run_cluster("scalar", **kwargs()), run_cluster("batch", **kwargs()))

    def test_monoagent_controllers(self):
        kwargs = lambda: dict(controller_factory=monoagent_factory(), rate=0.7)
        assert_identical(run_cluster("scalar", **kwargs()), run_cluster("batch", **kwargs()))

    def test_multi_video_playlists(self):
        kwargs = lambda: dict(playlist_videos=3, duration=40)
        assert_identical(run_cluster("scalar", **kwargs()), run_cluster("batch", **kwargs()))

    def test_heterogeneous_topologies(self):
        def small_server():
            return MulticoreServer(
                topology=CpuTopology(sockets=1, cores_per_socket=4)
            )

        kwargs = lambda: dict(
            server_factory=small_server,
            controller_factory=static_factory(qp=32, threads=6, frequency_ghz=2.9),
            rate=1.5,
        )
        assert_identical(run_cluster("scalar", **kwargs()), run_cluster("batch", **kwargs()))

    def test_bounded_drain_overload(self):
        kwargs = lambda: dict(
            admission=AlwaysAdmit(),
            dispatcher=RoundRobin(),
            rate=2.0,
            drain=True,
            max_drain_steps=5,
        )
        assert_identical(run_cluster("scalar", **kwargs()), run_cluster("batch", **kwargs()))

    def test_batch_engine_is_deterministic(self):
        assert_identical(run_cluster("batch", seed=11), run_cluster("batch", seed=11))

    def test_unknown_engine_rejected(self):
        workload = WorkloadGenerator(PoissonTraffic(0.5), seed=0)
        with pytest.raises(ClusterError):
            ClusterOrchestrator(1, workload, engine="turbo")


class TestMamutFleetEquivalence:
    """ISSUE 5: MAMUT fleets ride the vectorized activation path.

    The driver keeps observation windows in fleet arrays and closes Q
    updates from batched averaging/discretisation/rewards, so these tests
    pin bitwise equivalence on exactly the configurations that stress its
    bookkeeping: mid-run autoscale resizes (the stepper — and with it the
    driver — is torn down and rebuilt while windows are mid-flight) and
    brownout-degraded controller factories (mixed fleets where only some
    lanes are driver-managed, or driven lanes disagree on reward/state
    parameters).
    """

    def run_autoscaled(self, engine):
        workload = WorkloadGenerator(
            FlashCrowdTraffic(0.25, peak_multiplier=5.0, start=10, duration=12),
            seed=5,
            frames_per_video=16,
        )
        cluster = ClusterOrchestrator(
            2,
            workload,
            admission=AlwaysAdmit(),
            controller_factory=mamut_factory(),
            seed=5,
            engine=engine,
            autoscaler=ReactiveThreshold(sessions_per_server=2),
            min_servers=1,
            max_servers=6,
            provision_warmup_steps=2,
        )
        return cluster.run(50)

    def test_autoscale_resizes_equivalent(self):
        scalar = self.run_autoscaled("scalar")
        batch = self.run_autoscaled("batch")
        # The scenario must actually resize mid-run (both directions), or it
        # would not exercise the stepper teardown/window-flush path.
        directions = {event.direction for event in batch.scaling_events}
        assert directions == {"up", "down"}
        assert_identical(scalar, batch)
        assert scalar.scaling_events == batch.scaling_events
        assert scalar.fleet_trace == batch.fleet_trace

    def run_brownout(self, engine, degraded_factory):
        workload = WorkloadGenerator(
            FlashCrowdTraffic(0.3, peak_multiplier=6.0, start=5, duration=10),
            seed=7,
            frames_per_video=14,
            patience_steps=4,
        )
        cluster = ClusterOrchestrator(
            2,
            workload,
            admission=CapacityThreshold(
                max_sessions_per_server=2, max_queue=12, brownout_extra_sessions=6
            ),
            controller_factory=mamut_factory(),
            seed=7,
            engine=engine,
            brownout=BrownoutController(
                sessions_per_server=2,
                enter_steps=2,
                exit_steps=4,
                fps_relax=0.6,
                degraded_factory=degraded_factory,
            ),
        )
        return cluster.run(30)

    def test_brownout_mixed_static_degraded_fleet_equivalent(self):
        # Static degraded sessions share servers with learning sessions:
        # only part of the fleet is driver-managed.
        factory = lambda: static_factory(qp=40, threads=2, frequency_ghz=3.2)
        scalar = self.run_brownout("scalar", factory())
        batch = self.run_brownout("batch", factory())
        assert batch.summary().brownout_steps > 0
        assert batch.summary().degraded_sessions > 0
        assert_identical(scalar, batch)

    def test_brownout_degraded_mamut_fleet_equivalent(self):
        # Degraded MAMUT controllers carry a different power cap, so driven
        # lanes split across vector groups (distinct state space + reward
        # parameters) within one batched activation step.
        factory = lambda: mamut_factory(power_cap_w=80.0)
        scalar = self.run_brownout("scalar", factory())
        batch = self.run_brownout("batch", factory())
        assert batch.summary().degraded_sessions > 0
        assert_identical(scalar, batch)

    def test_q_tables_identical_after_run(self):
        def collect(engine):
            workload = WorkloadGenerator(
                PoissonTraffic(1.0), seed=3, frames_per_video=12
            )
            cluster = ClusterOrchestrator(
                2,
                workload,
                controller_factory=mamut_factory(),
                seed=3,
                engine=engine,
            )
            cluster.run(30, drain=True)
            tables = {}
            for orch in cluster.orchestrators:
                for session in orch.sessions:
                    controller = session.controller
                    tables[session.session_id] = {
                        name: agent.q_table.to_dict()
                        for name, agent in controller.agents.items()
                    }
            return tables

        assert collect("scalar") == collect("batch")


class TestOrchestratorBatchRun:
    def make_sessions(self, count=4, frames=12):
        sessions = []
        for i in range(count):
            resolution = ResolutionClass.HR if i % 2 == 0 else ResolutionClass.LR
            sequence = random_sequence(resolution, rng=i, num_frames=frames)
            request = TranscodingRequest(user_id=f"user-{i}", sequence=sequence)
            controller = mamut_factory()(request, seed=i)
            sessions.append(TranscodingSession(request=request, controller=controller))
        return sessions

    def test_run_batch_equals_scalar(self):
        scalar = Orchestrator(self.make_sessions()).run()
        batch = Orchestrator(self.make_sessions()).run(engine="batch")
        assert scalar.records_by_session == batch.records_by_session
        assert list(scalar.power_samples) == list(batch.power_samples)
        assert scalar.steps == batch.steps
        assert scalar.summary() == batch.summary()

    def test_run_rejects_unknown_engine(self):
        with pytest.raises(ScenarioError):
            Orchestrator(self.make_sessions(1)).run(engine="vector")


class TestBatchStepperProtocol:
    def test_idle_fleet_emits_idle_samples(self):
        orchestrators = [Orchestrator(), Orchestrator()]
        stepper = BatchStepper(orchestrators)
        samples = stepper.step(0)
        reference = Orchestrator().idle_step(0)
        assert [s.power_w for s in samples] == [reference.power_w] * 2
        assert all(s.active_sessions == 0 for s in samples)
        assert all(s.duration_s == reference.duration_s for s in samples)

    def test_commit_requires_peek(self):
        sessions = TestOrchestratorBatchRun().make_sessions(1)
        with pytest.raises(ScenarioError):
            sessions[0].commit_step_result(None, None)

    def test_execute_after_peek_rejected(self):
        session = TestOrchestratorBatchRun().make_sessions(1)[0]
        session.peek_decision()
        with pytest.raises(ScenarioError):
            session.execute(1.0, 100.0)

    def test_out_of_range_qp_rejected_like_scalar(self):
        from repro.core.controller import Controller, Decision
        from repro.errors import EncodingError

        class BadQp(Controller):
            def decide(self, frame_index, observation):
                return Decision(qp=60, threads=4, frequency_ghz=3.2)

        for engine in ("scalar", "batch"):
            workload = WorkloadGenerator(
                PoissonTraffic(1.0), seed=0, frames_per_video=5
            )
            cluster = ClusterOrchestrator(
                1,
                workload,
                controller_factory=lambda request, seed: BadQp(),
                seed=0,
                engine=engine,
            )
            with pytest.raises(EncodingError):
                cluster.run(10)


class TestThroughputBenchClaims:
    """ISSUE 5: the learning-controller throughput claims of bench_step_throughput."""

    def test_bench_json_records_mamut_rows_and_speedup_floor(self):
        import json
        from pathlib import Path

        payload = json.loads(
            (Path(__file__).resolve().parent.parent / "BENCH_throughput.json").read_text()
        )
        rows = [r for r in payload["results"] if r["controller"] == "mamut"]
        assert {r["engine"] for r in rows} == {"scalar", "batch"}
        assert any(r["servers"] >= 64 for r in rows)
        speedups = payload["speedup_batch_over_scalar"]["mamut"]
        assert speedups["64"] >= 3.0
        # The static rows must survive the merge.
        assert payload["speedup_batch_over_scalar"]["static"]["64"] >= 5.0

    def test_mamut_batch_beats_scalar_wall_clock(self):
        """A conservative live canary for the headline >=3x-at-64 claim.

        Run at a smaller scale so the test stays fast, and only assert that
        the batch engine is actually ahead — the full factor is asserted by
        the benchmark itself (bench_step_throughput --controller mamut).
        """
        import time

        from repro.cluster.workload import TrafficModel

        class Burst(TrafficModel):
            def rate(self, step):
                return 48.0 if step == 0 else 0.0

        def run(engine):
            workload = WorkloadGenerator(Burst(), seed=0, frames_per_video=40)
            cluster = ClusterOrchestrator(
                24,
                workload,
                admission=AlwaysAdmit(),
                dispatcher=RoundRobin(),
                controller_factory=mamut_factory(),
                seed=0,
                engine=engine,
            )
            # Admit the step-0 burst (two sessions per server) untimed, then
            # time the pure stepping loop like the benchmark does.
            cluster.run(1, drain=False)
            if engine == "batch":
                stepper = BatchStepper(cluster.orchestrators)
                stepper.step(1)  # warm-up: roster gather
                start = time.perf_counter()
                for step in range(2, 32):
                    stepper.step(step)
            else:
                for orch in cluster.orchestrators:
                    if orch.run_step(1) is None:
                        orch.idle_step(1)
                start = time.perf_counter()
                for step in range(2, 32):
                    for orch in cluster.orchestrators:
                        if orch.run_step(step) is None:
                            orch.idle_step(step)
            return time.perf_counter() - start

        scalar_elapsed = run("scalar")
        batch_elapsed = run("batch")
        assert batch_elapsed < scalar_elapsed


class TestEngineResume:
    """Window state survives engine hand-offs (chunked runs, engine switches)."""

    def test_chunked_batch_run_equals_one_shot(self):
        sessions = TestOrchestratorBatchRun().make_sessions
        one_shot = Orchestrator(sessions(frames=24)).run(engine="batch")
        orch = Orchestrator(sessions(frames=24))
        first = orch.run(max_steps=9, engine="batch")
        rest = orch.run(engine="batch")
        assert first.steps == 9
        chunked = {
            session_id: first.records_by_session[session_id]
            + rest.records_by_session[session_id][9:]
            for session_id in one_shot.records_by_session
        }
        # rest.records_by_session includes the first chunk's records too
        # (session.records is cumulative) — compare the full trajectories.
        assert rest.records_by_session == one_shot.records_by_session
        assert chunked == one_shot.records_by_session

    def test_batch_then_scalar_equals_pure_scalar(self):
        sessions = TestOrchestratorBatchRun().make_sessions
        pure = Orchestrator(sessions(frames=24)).run()
        orch = Orchestrator(sessions(frames=24))
        orch.run(max_steps=9, engine="batch")
        mixed = orch.run(engine="scalar")
        assert mixed.records_by_session == pure.records_by_session

    def test_scalar_then_batch_equals_pure_batch(self):
        sessions = TestOrchestratorBatchRun().make_sessions
        pure = Orchestrator(sessions(frames=24)).run(engine="batch")
        orch = Orchestrator(sessions(frames=24))
        orch.run(max_steps=9, engine="scalar")
        mixed = orch.run(engine="batch")
        assert mixed.records_by_session == pure.records_by_session
