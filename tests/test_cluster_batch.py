"""Scalar/batch engine equivalence for the cluster stepping hot path.

The batch engine's contract is *bitwise* seed-for-seed equivalence: the same
``(workload seed, policies, cluster seed)`` must produce identical frame
records, power traces, admission ledgers and summaries on both engines.
These tests compare complete :class:`~repro.cluster.cluster.ClusterResult`
objects with plain ``==`` (dataclass equality → exact float equality).
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    AlwaysAdmit,
    BatchStepper,
    CapacityThreshold,
    ClusterOrchestrator,
    PoissonTraffic,
    PowerHeadroom,
    RoundRobin,
    WorkloadGenerator,
)
from repro.cluster.dispatch import PowerAware
from repro.errors import ClusterError, ScenarioError
from repro.manager.factories import (
    heuristic_factory,
    mamut_factory,
    monoagent_factory,
    static_factory,
)
from repro.manager.orchestrator import Orchestrator
from repro.manager.session import TranscodingSession
from repro.platform.server import MulticoreServer
from repro.platform.topology import CpuTopology
from repro.video.catalog import random_sequence
from repro.video.request import TranscodingRequest
from repro.video.sequence import ResolutionClass


def run_cluster(engine, *, seed=3, servers=3, rate=1.0, duration=30,
                admission=None, dispatcher=None, controller_factory=None,
                server_factory=MulticoreServer, drain=True,
                max_drain_steps=None, **workload_kwargs):
    workload = WorkloadGenerator(
        PoissonTraffic(rate), seed=seed, frames_per_video=10, **workload_kwargs
    )
    cluster = ClusterOrchestrator(
        servers,
        workload,
        admission=admission,
        dispatcher=dispatcher,
        controller_factory=controller_factory,
        server_factory=server_factory,
        seed=seed,
        engine=engine,
    )
    return cluster.run(duration, drain=drain, max_drain_steps=max_drain_steps)


def assert_identical(a, b):
    assert a.records_by_server == b.records_by_server
    assert a.samples_by_server == b.samples_by_server
    assert (a.arrivals, a.admitted, a.rejected, a.abandoned) == (
        b.arrivals,
        b.admitted,
        b.rejected,
        b.abandoned,
    )
    assert a.queue_waits == b.queue_waits
    assert a.steps == b.steps
    assert a.summary() == b.summary()


class TestEngineEquivalence:
    # Policies are stateful (e.g. RoundRobin's cursor), so every comparison
    # builds fresh keyword arguments per run.

    def test_static_controllers_default_policies(self):
        kwargs = lambda: dict(
            controller_factory=static_factory(qp=32, threads=4, frequency_ghz=3.2)
        )
        assert_identical(run_cluster("scalar", **kwargs()), run_cluster("batch", **kwargs()))

    def test_mamut_controllers_default_policies(self):
        assert_identical(run_cluster("scalar"), run_cluster("batch"))

    def test_mamut_power_headroom_power_aware(self):
        kwargs = lambda: dict(
            admission=PowerHeadroom(), dispatcher=PowerAware(), rate=1.5
        )
        assert_identical(run_cluster("scalar", **kwargs()), run_cluster("batch", **kwargs()))

    def test_chip_wide_heuristic_controllers(self):
        kwargs = lambda: dict(
            controller_factory=heuristic_factory(),
            admission=AlwaysAdmit(),
            dispatcher=RoundRobin(),
            rate=0.8,
        )
        assert_identical(run_cluster("scalar", **kwargs()), run_cluster("batch", **kwargs()))

    def test_monoagent_controllers(self):
        kwargs = lambda: dict(controller_factory=monoagent_factory(), rate=0.7)
        assert_identical(run_cluster("scalar", **kwargs()), run_cluster("batch", **kwargs()))

    def test_multi_video_playlists(self):
        kwargs = lambda: dict(playlist_videos=3, duration=40)
        assert_identical(run_cluster("scalar", **kwargs()), run_cluster("batch", **kwargs()))

    def test_heterogeneous_topologies(self):
        def small_server():
            return MulticoreServer(
                topology=CpuTopology(sockets=1, cores_per_socket=4)
            )

        kwargs = lambda: dict(
            server_factory=small_server,
            controller_factory=static_factory(qp=32, threads=6, frequency_ghz=2.9),
            rate=1.5,
        )
        assert_identical(run_cluster("scalar", **kwargs()), run_cluster("batch", **kwargs()))

    def test_bounded_drain_overload(self):
        kwargs = lambda: dict(
            admission=AlwaysAdmit(),
            dispatcher=RoundRobin(),
            rate=2.0,
            drain=True,
            max_drain_steps=5,
        )
        assert_identical(run_cluster("scalar", **kwargs()), run_cluster("batch", **kwargs()))

    def test_batch_engine_is_deterministic(self):
        assert_identical(run_cluster("batch", seed=11), run_cluster("batch", seed=11))

    def test_unknown_engine_rejected(self):
        workload = WorkloadGenerator(PoissonTraffic(0.5), seed=0)
        with pytest.raises(ClusterError):
            ClusterOrchestrator(1, workload, engine="turbo")


class TestOrchestratorBatchRun:
    def make_sessions(self, count=4, frames=12):
        sessions = []
        for i in range(count):
            resolution = ResolutionClass.HR if i % 2 == 0 else ResolutionClass.LR
            sequence = random_sequence(resolution, rng=i, num_frames=frames)
            request = TranscodingRequest(user_id=f"user-{i}", sequence=sequence)
            controller = mamut_factory()(request, seed=i)
            sessions.append(TranscodingSession(request=request, controller=controller))
        return sessions

    def test_run_batch_equals_scalar(self):
        scalar = Orchestrator(self.make_sessions()).run()
        batch = Orchestrator(self.make_sessions()).run(engine="batch")
        assert scalar.records_by_session == batch.records_by_session
        assert list(scalar.power_samples) == list(batch.power_samples)
        assert scalar.steps == batch.steps
        assert scalar.summary() == batch.summary()

    def test_run_rejects_unknown_engine(self):
        with pytest.raises(ScenarioError):
            Orchestrator(self.make_sessions(1)).run(engine="vector")


class TestBatchStepperProtocol:
    def test_idle_fleet_emits_idle_samples(self):
        orchestrators = [Orchestrator(), Orchestrator()]
        stepper = BatchStepper(orchestrators)
        samples = stepper.step(0)
        reference = Orchestrator().idle_step(0)
        assert [s.power_w for s in samples] == [reference.power_w] * 2
        assert all(s.active_sessions == 0 for s in samples)
        assert all(s.duration_s == reference.duration_s for s in samples)

    def test_commit_requires_peek(self):
        sessions = TestOrchestratorBatchRun().make_sessions(1)
        with pytest.raises(ScenarioError):
            sessions[0].commit_step_result(None, None)

    def test_execute_after_peek_rejected(self):
        session = TestOrchestratorBatchRun().make_sessions(1)[0]
        session.peek_decision()
        with pytest.raises(ScenarioError):
            session.execute(1.0, 100.0)

    def test_out_of_range_qp_rejected_like_scalar(self):
        from repro.core.controller import Controller, Decision
        from repro.errors import EncodingError

        class BadQp(Controller):
            def decide(self, frame_index, observation):
                return Decision(qp=60, threads=4, frequency_ghz=3.2)

        for engine in ("scalar", "batch"):
            workload = WorkloadGenerator(
                PoissonTraffic(1.0), seed=0, frames_per_video=5
            )
            cluster = ClusterOrchestrator(
                1,
                workload,
                controller_factory=lambda request, seed: BadQp(),
                seed=0,
                engine=engine,
            )
            with pytest.raises(EncodingError):
                cluster.run(10)
