"""Unit tests for repro.core.observation."""

from __future__ import annotations

import pytest

from repro.core.observation import Observation, average_observations
from repro.errors import LearningError


class TestObservation:
    def test_valid_construction(self):
        obs = Observation(fps=25.0, psnr_db=36.0, bitrate_mbps=4.0, power_w=80.0)
        assert obs.fps == 25.0

    def test_negative_values_rejected(self):
        with pytest.raises(LearningError):
            Observation(fps=-1.0, psnr_db=36.0, bitrate_mbps=4.0, power_w=80.0)
        with pytest.raises(LearningError):
            Observation(fps=25.0, psnr_db=36.0, bitrate_mbps=-0.1, power_w=80.0)
        with pytest.raises(LearningError):
            Observation(fps=25.0, psnr_db=36.0, bitrate_mbps=4.0, power_w=-1.0)


class TestAverageObservations:
    def test_single_observation_is_identity(self):
        obs = Observation(fps=25.0, psnr_db=36.0, bitrate_mbps=4.0, power_w=80.0)
        assert average_observations([obs]) == obs

    def test_componentwise_mean(self):
        a = Observation(fps=20.0, psnr_db=30.0, bitrate_mbps=2.0, power_w=60.0)
        b = Observation(fps=30.0, psnr_db=40.0, bitrate_mbps=6.0, power_w=100.0)
        avg = average_observations([a, b])
        assert avg.fps == pytest.approx(25.0)
        assert avg.psnr_db == pytest.approx(35.0)
        assert avg.bitrate_mbps == pytest.approx(4.0)
        assert avg.power_w == pytest.approx(80.0)

    def test_empty_list_rejected(self):
        with pytest.raises(LearningError):
            average_observations([])

    def test_accepts_generators(self):
        observations = (
            Observation(fps=float(f), psnr_db=35.0, bitrate_mbps=3.0, power_w=70.0)
            for f in (24, 26)
        )
        assert average_observations(observations).fps == pytest.approx(25.0)
