"""Unit tests for repro.core.observation."""

from __future__ import annotations

import pytest

from repro.core.observation import Observation, average_observations
from repro.errors import LearningError


class TestObservation:
    def test_valid_construction(self):
        obs = Observation(fps=25.0, psnr_db=36.0, bitrate_mbps=4.0, power_w=80.0)
        assert obs.fps == 25.0

    def test_negative_values_rejected(self):
        with pytest.raises(LearningError):
            Observation(fps=-1.0, psnr_db=36.0, bitrate_mbps=4.0, power_w=80.0)
        with pytest.raises(LearningError):
            Observation(fps=25.0, psnr_db=36.0, bitrate_mbps=-0.1, power_w=80.0)
        with pytest.raises(LearningError):
            Observation(fps=25.0, psnr_db=36.0, bitrate_mbps=4.0, power_w=-1.0)


class TestAverageObservations:
    def test_single_observation_is_identity(self):
        obs = Observation(fps=25.0, psnr_db=36.0, bitrate_mbps=4.0, power_w=80.0)
        assert average_observations([obs]) == obs

    def test_componentwise_mean(self):
        a = Observation(fps=20.0, psnr_db=30.0, bitrate_mbps=2.0, power_w=60.0)
        b = Observation(fps=30.0, psnr_db=40.0, bitrate_mbps=6.0, power_w=100.0)
        avg = average_observations([a, b])
        assert avg.fps == pytest.approx(25.0)
        assert avg.psnr_db == pytest.approx(35.0)
        assert avg.bitrate_mbps == pytest.approx(4.0)
        assert avg.power_w == pytest.approx(80.0)

    def test_empty_list_rejected(self):
        with pytest.raises(LearningError):
            average_observations([])

    def test_accepts_generators(self):
        observations = (
            Observation(fps=float(f), psnr_db=35.0, bitrate_mbps=3.0, power_w=70.0)
            for f in (24, 26)
        )
        assert average_observations(observations).fps == pytest.approx(25.0)


class TestSinglePassAveraging:
    def test_matches_the_four_pass_reference_bitwise(self):
        import numpy as np

        rng = np.random.default_rng(3)
        for n in (1, 2, 3, 7, 20, 150):
            observations = [
                Observation(
                    fps=float(rng.uniform(1, 60)),
                    psnr_db=float(rng.uniform(20, 55)),
                    bitrate_mbps=float(rng.uniform(0.1, 10)),
                    power_w=float(rng.uniform(40, 200)),
                )
                for _ in range(n)
            ]
            averaged = average_observations(observations)
            # The historical implementation: one sum() pass per component.
            assert averaged.fps == sum(o.fps for o in observations) / n
            assert averaged.psnr_db == sum(o.psnr_db for o in observations) / n
            assert (
                averaged.bitrate_mbps
                == sum(o.bitrate_mbps for o in observations) / n
            )
            assert averaged.power_w == sum(o.power_w for o in observations) / n

    def test_accepts_any_iterable_once(self):
        averaged = average_observations(
            Observation(fps=10.0 * i, psnr_db=30.0, bitrate_mbps=1.0, power_w=50.0)
            for i in (1, 2)
        )
        assert averaged.fps == 15.0
