"""Unit tests for repro.platform.topology."""

from __future__ import annotations

import pytest

from repro.errors import PlatformError
from repro.platform.topology import CpuTopology


class TestCpuTopology:
    def test_defaults_match_the_paper_platform(self):
        topology = CpuTopology()
        assert topology.physical_cores == 16
        assert topology.hardware_threads == 32

    def test_core_ids(self):
        assert list(CpuTopology().core_ids()) == list(range(16))

    def test_validation(self):
        with pytest.raises(PlatformError):
            CpuTopology(sockets=0)
        with pytest.raises(PlatformError):
            CpuTopology(cores_per_socket=0)
        with pytest.raises(PlatformError):
            CpuTopology(smt=0)
        with pytest.raises(PlatformError):
            CpuTopology(smt_efficiency=0.3)


class TestEffectiveCapacity:
    def test_under_core_count_is_linear(self):
        topology = CpuTopology()
        for threads in range(0, 17):
            assert topology.effective_capacity(threads) == pytest.approx(float(threads))

    def test_smt_region_adds_partial_capacity(self):
        topology = CpuTopology()
        at_cores = topology.effective_capacity(16)
        at_ht = topology.effective_capacity(32)
        assert at_cores < at_ht < 32.0
        assert at_ht == pytest.approx(2 * 16 * topology.smt_efficiency)

    def test_capacity_saturates_beyond_hardware_threads(self):
        topology = CpuTopology()
        assert topology.effective_capacity(40) == pytest.approx(topology.effective_capacity(32))

    def test_capacity_is_monotone(self):
        topology = CpuTopology()
        capacities = [topology.effective_capacity(t) for t in range(0, 64)]
        assert all(b >= a for a, b in zip(capacities, capacities[1:]))

    def test_negative_threads_raise(self):
        with pytest.raises(PlatformError):
            CpuTopology().effective_capacity(-1)


class TestContentionScale:
    def test_no_contention_below_core_count(self):
        topology = CpuTopology()
        assert topology.contention_scale(10) == pytest.approx(1.0)
        assert topology.contention_scale(16) == pytest.approx(1.0)

    def test_scale_decreases_with_oversubscription(self):
        topology = CpuTopology()
        scales = [topology.contention_scale(t) for t in (16, 24, 32, 48, 64)]
        assert all(b <= a for a, b in zip(scales, scales[1:]))
        assert all(0.0 < s <= 1.0 for s in scales)

    def test_zero_threads_scale_is_one(self):
        assert CpuTopology().contention_scale(0) == pytest.approx(1.0)
