"""Unit tests for repro.core.mamut (the MAMUT controller)."""

from __future__ import annotations

import pytest

from repro.core.config import MamutConfig
from repro.core.mamut import DVFS_AGENT, QP_AGENT, THREAD_AGENT, MamutController
from repro.core.observation import Observation
from repro.errors import LearningError
from repro.core.schedule import AgentSchedule, AgentSlot
from repro.platform.dvfs import DvfsPolicy


def obs(fps=25.0, psnr=36.0, bitrate=4.0, power=80.0) -> Observation:
    return Observation(fps=fps, psnr_db=psnr, bitrate_mbps=bitrate, power_w=power)


def drive(controller: MamutController, frames: int, observation_factory=obs) -> None:
    """Feed `frames` frames of observations through the controller."""
    controller.decide(0, None)
    for frame in range(1, frames):
        controller.decide(frame, observation_factory())


class TestBasics:
    def test_default_construction(self):
        controller = MamutController()
        assert controller.name == "MAMUT"
        assert controller.dvfs_policy is DvfsPolicy.PER_CORE
        assert set(controller.agents) == {QP_AGENT, THREAD_AGENT, DVFS_AGENT}

    def test_first_decision_is_the_initial_configuration(self, mamut_controller):
        decision = mamut_controller.decide(0, None)
        assert decision.qp == mamut_controller.config.initial_qp
        assert decision.threads == mamut_controller.config.initial_threads
        assert decision.frequency_ghz == pytest.approx(
            mamut_controller.config.initial_frequency_ghz
        )

    def test_decisions_stay_inside_the_action_sets(self, mamut_controller):
        config = mamut_controller.config
        mamut_controller.decide(0, None)
        for frame in range(1, 200):
            decision = mamut_controller.decide(frame, obs(fps=20.0 + (frame % 20)))
            assert decision.qp in config.qp_actions
            assert decision.threads in config.thread_actions
            assert decision.frequency_ghz in config.dvfs_actions

    def test_schedule_with_unknown_agent_rejected(self):
        config = MamutConfig(schedule=AgentSchedule([AgentSlot("mystery", 6, 0)]))
        with pytest.raises(LearningError):
            MamutController(config)


class TestLearning:
    def test_agents_accumulate_knowledge(self, mamut_controller):
        drive(mamut_controller, 300)
        summary = mamut_controller.summary()
        assert all(entry["q_entries"] > 0 for entry in summary.values())
        assert all(entry["visited_states"] >= 1 for entry in summary.values())

    def test_dvfs_agent_learns_fastest(self, mamut_controller):
        """AGdvfs acts 4x more often than AGqp (Fig. 3), so it accumulates
        more updates over the same horizon."""
        drive(mamut_controller, 480)
        qp_updates = sum(
            mamut_controller.agents[QP_AGENT].action_count(a)
            for a in mamut_controller.agents[QP_AGENT].actions.indices()
        )
        dvfs_updates = sum(
            mamut_controller.agents[DVFS_AGENT].action_count(a)
            for a in mamut_controller.agents[DVFS_AGENT].actions.indices()
        )
        assert dvfs_updates > 2 * qp_updates

    def test_no_learning_without_observations(self, mamut_controller):
        for frame in range(50):
            mamut_controller.decide(frame, None)
        assert all(
            entry["q_entries"] == 0 for entry in mamut_controller.summary().values()
        )

    def test_reset_keeps_learned_knowledge(self, mamut_controller):
        drive(mamut_controller, 200)
        entries_before = {
            name: entry["q_entries"] for name, entry in mamut_controller.summary().items()
        }
        mamut_controller.reset()
        entries_after = {
            name: entry["q_entries"] for name, entry in mamut_controller.summary().items()
        }
        assert entries_after == entries_before

    def test_phase_summary_reports_every_agent(self, mamut_controller):
        drive(mamut_controller, 100)
        state = mamut_controller.state_space.discretize(obs())
        phases = mamut_controller.phase_summary(state)
        assert set(phases) == {QP_AGENT, THREAD_AGENT, DVFS_AGENT}


class TestHistory:
    def test_history_disabled_by_default(self, mamut_controller):
        drive(mamut_controller, 100)
        assert mamut_controller.history == []

    def test_history_records_activations(self, hr_request):
        config = MamutConfig.for_request(hr_request, record_history=True)
        controller = MamutController(config)
        drive(controller, 100)
        assert len(controller.history) > 10
        first = controller.history[0]
        assert first.agent in (QP_AGENT, THREAD_AGENT, DVFS_AGENT)
        assert first.action_value in controller.agents[first.agent].actions
        # The very first activation has no previous pending update to reward.
        assert first.reward is None
        assert any(entry.reward is not None for entry in controller.history[1:])

    def test_history_frames_match_schedule(self, hr_request):
        config = MamutConfig.for_request(hr_request, record_history=True)
        controller = MamutController(config)
        drive(controller, 120)
        for entry in controller.history:
            assert controller.schedule.agent_at(entry.frame_index) == entry.agent


class TestAdaptation:
    def test_constraint_violations_discourage_the_responsible_actions(self, hr_request):
        """When the bitrate constantly violates the bandwidth constraint, the
        QP agent's Q-values for low QP values should end up below those of
        high QP values (low QP = high bitrate)."""
        config = MamutConfig.for_request(hr_request, seed=1)
        controller = MamutController(config)

        def observation_for(decision_qp: int) -> Observation:
            bitrate = 12.0 if decision_qp <= 29 else 3.0
            return Observation(fps=26.0, psnr_db=37.0, bitrate_mbps=bitrate, power_w=80.0)

        controller.decide(0, None)
        for frame in range(1, 2000):
            decision = controller.current_decision()
            controller.decide(frame, observation_for(decision.qp))

        qp_agent = controller.agents[QP_AGENT]
        visited = qp_agent.known_states()
        assert visited, "the QP agent should have visited at least one state"
        low_qp_index = qp_agent.actions.index_of(22)
        high_qp_index = qp_agent.actions.index_of(37)
        low = max(qp_agent.q_table.get(s, low_qp_index) for s in visited)
        high = max(qp_agent.q_table.get(s, high_qp_index) for s in visited)
        assert high > low


class TestObservationWindow:
    """The running-sum window behind the batch driver's SoA mirror."""

    def controller(self):
        return MamutController(MamutConfig(seed=0))

    def observation(self, fps=30.0):
        return Observation(fps=fps, psnr_db=40.0, bitrate_mbps=2.0, power_w=100.0)

    def test_decide_accumulates_and_activation_clears(self):
        controller = self.controller()
        controller.decide(0, None)
        assert controller.observation_window() == (0.0, 0.0, 0.0, 0.0, 0)
        # Frame 1 is a threads activation under the paper's schedule: the
        # single buffered observation is consumed.
        controller.decide(1, self.observation(fps=20.0))
        assert controller.observation_window() == (0.0, 0.0, 0.0, 0.0, 0)
        # NULL slots accumulate.
        controller.decide(3, self.observation(fps=10.0))
        controller.decide(4, self.observation(fps=14.0))
        fps_sum, psnr_sum, bitrate_sum, power_sum, count = (
            controller.observation_window()
        )
        assert (fps_sum, count) == (24.0, 2)
        assert psnr_sum == 80.0 and bitrate_sum == 4.0 and power_sum == 200.0

    def test_window_round_trips_through_setter(self):
        controller = self.controller()
        controller.set_observation_window(1.0, 2.0, 3.0, 4.0, 5)
        assert controller.observation_window() == (1.0, 2.0, 3.0, 4.0, 5)
        controller.reset()
        assert controller.observation_window() == (0.0, 0.0, 0.0, 0.0, 0)

    def test_external_activation_matches_decide(self):
        """apply_external_activation with precomputed inputs == _activate."""
        internal = self.controller()
        external = self.controller()
        trace = [self.observation(fps=10.0 + i) for i in range(8)]

        internal.decide(0, None)
        external.decide(0, None)
        window: list[Observation] = []
        for frame in range(1, 8):
            observation = trace[frame - 1]
            internal.decide(frame, observation)

            window.append(observation)
            agent_name = external.schedule.agent_at(frame)
            if agent_name is not None and window:
                from repro.core.observation import average_observations

                averaged = average_observations(window)
                state = external.state_space.discretize(averaged)
                reward = external.reward_function.total(averaged)
                external.apply_external_activation(agent_name, frame, state, reward)
                window.clear()

        assert internal.current_decision() == external.current_decision()
        for name in internal.agents:
            assert (
                internal.agents[name].q_table.to_dict()
                == external.agents[name].q_table.to_dict()
            )
