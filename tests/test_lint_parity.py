"""Scalar/batch parity rules: PAR101 (parameter drift), PAR102
(math/numpy transcendental backend mix — the ULP-divergence class)."""

from __future__ import annotations

from lint_fixtures import codes_of, lint_snippet


class TestParityParameterDrift:
    def test_default_drift_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/hevc/mod.py",
            """
            def gain(x, relax=0.5):
                return x * relax

            def gain_batch(x, relax=0.75):
                return x * relax
            """,
        )
        assert codes_of(findings) == ["PAR101"]

    def test_shared_name_order_drift_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/hevc/mod.py",
            """
            def cost(frame, wpp=True, frequency_ghz=1.3):
                return frame

            def cost_batch(frames, frequency_ghz=1.3, wpp=True):
                return frames
            """,
        )
        assert codes_of(findings) == ["PAR101"]

    def test_method_pair_inside_class_checked(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/hevc/mod.py",
            """
            class Model:
                def total(self, qp, wpp=True):
                    return qp

                def total_batch(self, qps, wpp=False):
                    return qps
            """,
        )
        assert codes_of(findings) == ["PAR101"]

    def test_matching_pair_passes(self, tmp_path):
        # Scalar takes objects, batch takes exploded arrays: only the
        # *shared* names (and their defaults/order) must agree.
        findings = lint_snippet(
            tmp_path,
            "repro/hevc/mod.py",
            """
            def total(frame, config, wpp=True, frequency_ghz=1.3):
                return frame

            def total_batch(frames, qps, wpp=True, frequency_ghz=1.3):
                return frames
            """,
        )
        assert findings == []

    def test_batch_without_scalar_counterpart_ignored(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/hevc/mod.py",
            """
            def project_batch(frames, wpp=True):
                return frames
            """,
        )
        assert findings == []

    def test_suppression(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/hevc/mod.py",
            """
            def gain(x, relax=0.5):
                return x * relax

            def gain_batch(x, relax=0.75):  # repro: allow[PAR101]
                return x * relax
            """,
        )
        assert findings == []


class TestParityMathBackendMix:
    def test_math_vs_numpy_exp_flagged(self, tmp_path):
        # The exact ULP class fixed in the vectorised-engine PR:
        # math.exp on the scalar path vs np.exp on the batch path.
        findings = lint_snippet(
            tmp_path,
            "repro/hevc/mod.py",
            """
            import math

            import numpy as np

            def decay(x):
                return math.exp(x)

            def decay_batch(xs):
                return np.exp(xs)
            """,
        )
        assert codes_of(findings) == ["PAR102"]

    def test_transitive_helper_mix_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/hevc/mod.py",
            """
            import math

            import numpy as np

            def _scalar_kernel(x):
                return math.log(x)

            def rate(x):
                return _scalar_kernel(x)

            def rate_batch(xs):
                return np.log(xs)
            """,
        )
        assert codes_of(findings) == ["PAR102"]

    def test_shared_backend_on_both_sides_passes(self, tmp_path):
        # A shared math.exp table feeding both paths is *agreement*:
        # both sides use the same libm kernel, so no ULP split exists.
        findings = lint_snippet(
            tmp_path,
            "repro/hevc/mod.py",
            """
            import math

            import numpy as np

            def _qp_factor(qp):
                return math.exp(qp / 6.0)

            def total(qp):
                return _qp_factor(qp)

            def total_batch(qps):
                return np.asarray([_qp_factor(qp) for qp in qps])
            """,
        )
        assert findings == []

    def test_non_transcendental_numpy_use_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/hevc/mod.py",
            """
            import math

            import numpy as np

            def span(x):
                return math.floor(x)

            def span_batch(xs):
                return np.asarray(xs).sum()
            """,
        )
        assert findings == []

    def test_numpy_spelling_normalised(self, tmp_path):
        # math.pow vs np.power are the same transcendental under two
        # spellings; the rule must still see the split.
        findings = lint_snippet(
            tmp_path,
            "repro/hevc/mod.py",
            """
            import math

            import numpy as np

            def amp(x, k):
                return math.pow(x, k)

            def amp_batch(xs, k):
                return np.power(xs, k)
            """,
        )
        assert codes_of(findings) == ["PAR102"]
