"""Unit tests for repro.manager.runner and repro.manager.factories."""

from __future__ import annotations

import pytest

from repro.errors import ScenarioError
from repro.manager.factories import (
    heuristic_factory,
    mamut_factory,
    monoagent_factory,
    static_factory,
)
from repro.manager.runner import ExperimentRunner
from repro.manager.scenario import scenario_one, scenario_two


@pytest.fixture
def runner() -> ExperimentRunner:
    return ExperimentRunner(power_cap_w=120.0, seed=0)


@pytest.fixture
def small_specs():
    return scenario_one(num_hr=1, num_lr=1, num_frames=48, seed=0)


class TestFactories:
    def test_each_factory_builds_a_controller(self, small_specs):
        request = small_specs[0].request
        assert mamut_factory()(request, 0).name == "MAMUT"
        assert monoagent_factory()(request, 0).name == "MonoAgent"
        assert heuristic_factory()(request, 0).name == "Heuristic"
        assert static_factory(32, 4, 3.2)(request, 0).name == "Static"

    def test_factories_honour_the_power_cap(self, small_specs):
        request = small_specs[0].request
        controller = mamut_factory(power_cap_w=90.0)(request, 0)
        assert controller.config.reward.power_cap_w == pytest.approx(90.0)

    def test_factories_thread_limits_depend_on_resolution(self, small_specs):
        hr_request = small_specs[0].request
        lr_request = small_specs[1].request
        assert len(mamut_factory()(hr_request, 0).config.thread_actions) == 12
        assert len(mamut_factory()(lr_request, 0).config.thread_actions) == 5


class TestRunner:
    def test_run_once_produces_all_sessions(self, runner, small_specs):
        result = runner.run_once(static_factory(32, 6, 3.2), small_specs)
        assert set(result.records_by_session) == {"hr-0", "lr-0"}
        assert result.steps == 48

    def test_run_averages_repetitions(self, runner, small_specs):
        averaged = runner.run("Static", static_factory(32, 6, 3.2), small_specs, repetitions=2)
        assert averaged.repetitions == 2
        assert len(averaged.runs) == 2
        assert averaged.mean_power_w > 0
        assert 0.0 <= averaged.qos_violation_pct <= 100.0

    def test_per_class_breakdown_present(self, runner, small_specs):
        averaged = runner.run("Static", static_factory(32, 6, 3.2), small_specs)
        assert set(averaged.per_class_threads) == {"HR", "LR"}
        assert set(averaged.per_class_qos_pct) == {"HR", "LR"}

    def test_compare_runs_every_factory(self, runner, small_specs):
        results = runner.compare(
            {"Static": static_factory(32, 6, 3.2), "Heuristic": heuristic_factory()},
            small_specs,
        )
        assert set(results) == {"Static", "Heuristic"}

    def test_warmup_discards_the_first_video(self, runner):
        specs = scenario_two(1, 0, followers=0, frames_per_video=24, seed=0)
        plain = runner.run_once(static_factory(32, 6, 3.2), specs, warmup_videos=0)
        warmed = runner.run_once(static_factory(32, 6, 3.2), specs, warmup_videos=1)
        assert len(plain.records_by_session["hr-0"]) == 24
        assert len(warmed.records_by_session["hr-0"]) == 24
        # The measured records of the warmed run start after the warm-up video.
        assert warmed.records_by_session["hr-0"][0].step == 24
        assert all(s.step >= 24 for s in warmed.power_samples)

    def test_same_seed_reproducible(self, small_specs):
        a = ExperimentRunner(seed=3).run("MAMUT", mamut_factory(), small_specs)
        b = ExperimentRunner(seed=3).run("MAMUT", mamut_factory(), small_specs)
        assert a.mean_power_w == pytest.approx(b.mean_power_w)
        assert a.qos_violation_pct == pytest.approx(b.qos_violation_pct)

    def test_validation(self, runner, small_specs):
        with pytest.raises(ScenarioError):
            runner.run("x", static_factory(32, 4, 3.2), small_specs, repetitions=0)
        with pytest.raises(ScenarioError):
            runner.run_once(static_factory(32, 4, 3.2), [])
        with pytest.raises(ScenarioError):
            runner.run_once(static_factory(32, 4, 3.2), small_specs, warmup_videos=-1)
        with pytest.raises(ScenarioError):
            ExperimentRunner(power_cap_w=0.0)
