"""Unit tests for repro.core.persistence."""

from __future__ import annotations

import pytest

from repro.core.actions import ActionSet
from repro.core.agent import QLearningAgent
from repro.core.config import MamutConfig
from repro.core.mamut import MamutController
from repro.core.observation import Observation
from repro.core.persistence import (
    load_snapshot,
    restore_agent,
    restore_agents,
    restore_session_state,
    save_snapshot,
    snapshot_agent,
    snapshot_agents,
    snapshot_controller,
    snapshot_session,
)
from repro.core.states import SystemState
from repro.errors import LearningError


S0 = SystemState(0, 1, 0, 0)
S1 = SystemState(2, 1, 0, 0)


def trained_agent(seed: int = 0) -> QLearningAgent:
    agent = QLearningAgent("demo", ActionSet("demo", (10, 20, 30)), seed=seed)
    agent.update(S0, 0, reward=-1.0, next_state=S0, peer_min_counts=[2])
    agent.update(S0, 1, reward=1.0, next_state=S1, peer_min_counts=[2])
    agent.update(S1, 2, reward=0.5, next_state=S1, peer_min_counts=[3])
    return agent


class TestAgentSnapshot:
    def test_roundtrip_preserves_q_values_and_counts(self):
        source = trained_agent()
        snapshot = snapshot_agent(source)
        target = QLearningAgent("demo", ActionSet("demo", (10, 20, 30)))
        restore_agent(target, snapshot)

        for state in (S0, S1):
            assert target.q_table.action_values(state) == pytest.approx(
                source.q_table.action_values(state)
            )
        assert target.state_action_count(S0, 1) == source.state_action_count(S0, 1)
        assert target.action_count(1) == source.action_count(1)
        assert target.min_action_count() == source.min_action_count()

    def test_roundtrip_preserves_transition_probabilities(self):
        source = trained_agent()
        snapshot = snapshot_agent(source)
        target = QLearningAgent("demo", ActionSet("demo", (10, 20, 30)))
        restore_agent(target, snapshot)
        assert target.transitions.probability(S0, 1, S1) == pytest.approx(
            source.transitions.probability(S0, 1, S1)
        )

    def test_restoring_into_mismatched_action_set_fails(self):
        snapshot = snapshot_agent(trained_agent())
        wrong_size = QLearningAgent("demo", ActionSet("demo", (10, 20)))
        with pytest.raises(LearningError):
            restore_agent(wrong_size, snapshot)
        wrong_values = QLearningAgent("demo", ActionSet("demo", (1, 2, 3)))
        with pytest.raises(LearningError):
            restore_agent(wrong_values, snapshot)

    def test_snapshot_is_json_serialisable(self, tmp_path):
        snapshot = snapshot_agents({"demo": trained_agent()})
        path = save_snapshot(snapshot, tmp_path / "knowledge.json")
        loaded = load_snapshot(path)
        assert loaded["version"] == snapshot["version"]
        assert set(loaded["agents"]) == {"demo"}


class TestControllerSnapshot:
    def _train(self, controller: MamutController, frames: int = 240) -> None:
        controller.decide(0, None)
        for frame in range(1, frames):
            controller.decide(
                frame, Observation(fps=25.0, psnr_db=36.0, bitrate_mbps=4.0, power_w=80.0)
            )

    def test_controller_knowledge_roundtrip(self, hr_request):
        source = MamutController(MamutConfig.for_request(hr_request, seed=0))
        self._train(source)
        snapshot = snapshot_agents(source.agents)

        target = MamutController(MamutConfig.for_request(hr_request, seed=99))
        restore_agents(target.agents, snapshot)
        for name, agent in source.agents.items():
            assert len(target.agents[name].q_table) == len(agent.q_table)
            assert target.agents[name].min_action_count() == agent.min_action_count()

    def test_unknown_agent_names_rejected(self, hr_request):
        source = MamutController(MamutConfig.for_request(hr_request))
        self._train(source, frames=60)
        snapshot = snapshot_agents(source.agents)
        snapshot["agents"]["mystery"] = snapshot["agents"]["qp"]
        target = MamutController(MamutConfig.for_request(hr_request))
        with pytest.raises(LearningError):
            restore_agents(target.agents, snapshot)

    def test_version_check(self, hr_request):
        source = MamutController(MamutConfig.for_request(hr_request))
        self._train(source, frames=60)
        snapshot = snapshot_agents(source.agents)
        snapshot["version"] = 999
        with pytest.raises(LearningError):
            restore_agents(MamutController(MamutConfig.for_request(hr_request)).agents, snapshot)


class TestRestoreRebuildsCaches:
    def test_min_action_count_fresh_after_restore(self):
        source = QLearningAgent("qp", ActionSet("qp", (28, 32, 36)))
        state = SystemState(1, 1, 1, 0)
        other = SystemState(2, 1, 1, 0)
        for action in (0, 0, 1, 2, 0):
            source.update(state, action, 1.0, other, [0, 0])
        snapshot = snapshot_agent(source)

        target = QLearningAgent("qp", ActionSet("qp", (28, 32, 36)))
        # Poison the cache: read it once so it is materialised at 0.
        assert target.min_action_count() == 0
        restore_agent(target, snapshot)
        assert target.min_action_count() == source.min_action_count() == 1
        assert target.max_state_count(state) == source.max_state_count(state)
        assert target.phase(state, [3, 3]) is source.phase(state, [3, 3])


class _SessionStub:
    """The duck type :func:`snapshot_session` reads: progress + controller."""

    def __init__(self, controller, frame_index, video_index=0):
        self.controller = controller
        self.frame_index = frame_index
        self.video_index = video_index


class TestSessionSnapshot:
    def _trained(self, hr_request, seed=0):
        controller = MamutController(MamutConfig.for_request(hr_request, seed=seed))
        controller.decide(0, None)
        for frame in range(1, 120):
            controller.decide(
                frame,
                Observation(fps=25.0, psnr_db=36.0, bitrate_mbps=4.0, power_w=80.0),
            )
        return controller

    @pytest.mark.parametrize(
        "frame,interval,resume",
        [(11, 4, 8), (12, 4, 12), (3, 4, 0), (11, None, 0), (0, 4, 0)],
    )
    def test_resume_frame_floors_to_the_interval(
        self, hr_request, frame, interval, resume
    ):
        session = _SessionStub(self._trained(hr_request), frame_index=frame)
        snapshot = snapshot_session(session, checkpoint_interval=interval)
        assert snapshot["resume_frame"] == resume
        assert snapshot["recomputed_frames"] == frame - resume
        assert snapshot["video_index"] == 0

    def test_restore_rehydrates_learned_state(self, hr_request):
        source = self._trained(hr_request)
        snapshot = snapshot_session(
            _SessionStub(source, frame_index=9, video_index=1),
            checkpoint_interval=4,
        )
        target = MamutController(MamutConfig.for_request(hr_request, seed=99))
        assert restore_session_state(target, snapshot)
        assert snapshot_controller(target) == snapshot_controller(source)

    def test_restore_of_none_is_a_noop(self, hr_request):
        target = MamutController(MamutConfig.for_request(hr_request, seed=1))
        before = snapshot_controller(target)
        assert not restore_session_state(target, None)
        assert snapshot_controller(target) == before
