"""Unit tests for repro.cluster.admission policies."""

from __future__ import annotations

import pytest

from repro.errors import ClusterError
from repro.cluster.admission import (
    AdmissionVerdict,
    AlwaysAdmit,
    CapacityThreshold,
    PowerHeadroom,
)
from repro.cluster.state import ClusterSnapshot, ServerSnapshot
from repro.cluster.workload import PoissonTraffic, WorkloadGenerator


@pytest.fixture
def event():
    return WorkloadGenerator(PoissonTraffic(1.0), seed=0)._build_event(0)


def snapshot(
    loads,
    powers=None,
    idle_powers=None,
    last_actives=None,
    queue_length=0,
    power_cap_w=480.0,
):
    powers = powers if powers is not None else [40.0] * len(loads)
    idle_powers = idle_powers if idle_powers is not None else [0.0] * len(loads)
    # Default: the power reading is fresh (taken with the current loads).
    last_actives = last_actives if last_actives is not None else list(loads)
    servers = tuple(
        ServerSnapshot(
            server_index=i,
            active_sessions=load,
            last_power_w=power,
            sessions_dispatched=load,
            idle_power_w=idle,
            last_active_sessions=last_active,
        )
        for i, (load, power, idle, last_active) in enumerate(
            zip(loads, powers, idle_powers, last_actives)
        )
    )
    return ClusterSnapshot(
        step=0, servers=servers, queue_length=queue_length, power_cap_w=power_cap_w
    )


class TestAlwaysAdmit:
    def test_admits_even_a_saturated_fleet(self, event):
        policy = AlwaysAdmit()
        assert policy.decide(event, snapshot([99, 99])) is AdmissionVerdict.ADMIT


class TestCapacityThreshold:
    def test_admits_while_a_server_has_room(self, event):
        policy = CapacityThreshold(max_sessions_per_server=4, max_queue=2)
        assert policy.decide(event, snapshot([4, 3])) is AdmissionVerdict.ADMIT

    def test_queues_when_all_servers_full(self, event):
        policy = CapacityThreshold(max_sessions_per_server=4, max_queue=2)
        assert policy.decide(event, snapshot([4, 4], queue_length=1)) is AdmissionVerdict.QUEUE

    def test_rejects_when_queue_full_too(self, event):
        policy = CapacityThreshold(max_sessions_per_server=4, max_queue=2)
        assert policy.decide(event, snapshot([4, 4], queue_length=2)) is AdmissionVerdict.REJECT

    def test_zero_queue_never_queues(self, event):
        policy = CapacityThreshold(max_sessions_per_server=1, max_queue=0)
        assert policy.decide(event, snapshot([1])) is AdmissionVerdict.REJECT

    def test_invalid_parameters(self):
        with pytest.raises(ClusterError):
            CapacityThreshold(max_sessions_per_server=0)
        with pytest.raises(ClusterError):
            CapacityThreshold(max_queue=-1)


class TestPowerHeadroom:
    def test_admits_with_headroom(self, event):
        policy = PowerHeadroom(max_queue=4)
        # Fleet draws 2x40 W with 2 sessions -> marginal ~40 W, cap 480 W.
        verdict = policy.decide(event, snapshot([1, 1], powers=[40.0, 40.0]))
        assert verdict is AdmissionVerdict.ADMIT

    def test_queues_at_the_cap(self, event):
        policy = PowerHeadroom(max_queue=4)
        verdict = policy.decide(
            event, snapshot([4, 4], powers=[110.0, 110.0], power_cap_w=230.0)
        )
        assert verdict is AdmissionVerdict.QUEUE

    def test_rejects_when_queue_is_full(self, event):
        policy = PowerHeadroom(max_queue=1)
        verdict = policy.decide(
            event,
            snapshot([4, 4], powers=[110.0, 110.0], queue_length=1, power_cap_w=230.0),
        )
        assert verdict is AdmissionVerdict.REJECT

    def test_idle_fleet_uses_the_estimate(self, event):
        policy = PowerHeadroom(watts_per_session_estimate=30.0, max_queue=0)
        # Idle fleet at 20 W each, cap 70 W: 40 + 30 <= 70 -> admit.
        assert policy.decide(
            event, snapshot([0, 0], powers=[20.0, 20.0], power_cap_w=70.0)
        ) is AdmissionVerdict.ADMIT
        # Cap 69 W -> no headroom and no queue -> reject.
        assert policy.decide(
            event, snapshot([0, 0], powers=[20.0, 20.0], power_cap_w=69.0)
        ) is AdmissionVerdict.REJECT

    def test_marginal_estimate_excludes_idle_power(self, event):
        # Fleet draws 130 W of which 100 W is idle/base: one session costs
        # ~30 W, not 130 W — so a 170 W cap still has headroom.
        policy = PowerHeadroom(max_queue=0)
        verdict = policy.decide(
            event,
            snapshot(
                [1, 0],
                powers=[80.0, 50.0],
                idle_powers=[50.0, 50.0],
                power_cap_w=170.0,
            ),
        )
        assert verdict is AdmissionVerdict.ADMIT

    def test_intra_step_burst_is_projected_against_the_cap(self, event):
        # Power was last sampled with 2 sessions (130 W, 30 W busy ->
        # 15 W/session), but 8 more were admitted since: the projection
        # 130 + 8*15 = 250 leaves no room for another 15 W under a 260 W
        # cap, even though the stale reading alone (130 + 15) would fit.
        policy = PowerHeadroom(max_queue=4)
        verdict = policy.decide(
            event,
            snapshot(
                [5, 5],
                powers=[65.0, 65.0],
                idle_powers=[50.0, 50.0],
                last_actives=[1, 1],
                power_cap_w=260.0,
            ),
        )
        assert verdict is AdmissionVerdict.QUEUE

    def test_invalid_parameters(self):
        with pytest.raises(ClusterError):
            PowerHeadroom(watts_per_session_estimate=0.0)
        with pytest.raises(ClusterError):
            PowerHeadroom(max_queue=-1)
