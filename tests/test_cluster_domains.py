"""Failure domains and checkpointed recovery: the topology-aware units.

Covers the pieces under the correlated-failure machinery exercised
end-to-end in ``test_cluster_faults.py``:

* :class:`FailureTopology` — balanced, seeded, growth-stable ``(zone,
  rack)`` assignment of roster slots;
* :class:`KillEntry` / :class:`KillSchedule` — declarative zone kills,
  their spec parser and validation;
* :class:`FaultConfig` — validation of the new domain/checkpoint fields
  and the extended ``enabled`` contract;
* :class:`FaultInjector` — schedule-free scheduled kills, seeded zone
  outage draws on the dedicated domain substream;
* checkpointed sessions — recomputation bounded by the interval, the
  metered write cost, and the snapshot/resume round trip through the
  cluster.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.cluster import (
    CapacityThreshold,
    ClusterOrchestrator,
    FailureAware,
    FailureTopology,
    FaultConfig,
    FaultInjector,
    KillEntry,
    KillSchedule,
    PoissonTraffic,
    WorkloadGenerator,
)
from repro.errors import ClusterError
from repro.manager.factories import static_factory


class TestFailureTopology:
    def test_single_zone_default(self):
        topology = FailureTopology()
        assert topology.domain_of(0) == (0, 0)
        assert topology.domain_of(7) == (0, 0)

    def test_zones_balanced_in_every_block(self):
        topology = FailureTopology(zones=3, racks_per_zone=2, seed=4)
        for block in range(4):
            zones = {topology.domain_of(block * 3 + pos)[0] for pos in range(3)}
            assert zones == {0, 1, 2}

    def test_assignment_is_deterministic_and_growth_stable(self):
        a = FailureTopology(zones=4, racks_per_zone=2, seed=9)
        b = FailureTopology(zones=4, racks_per_zone=2, seed=9)
        # Same seed -> same layout; a slot's domain never depends on how
        # many other slots exist (autoscale growth cannot re-shard zones).
        assert [a.domain_of(i) for i in range(16)] == [
            b.domain_of(i) for i in range(16)
        ]

    def test_seed_shuffles_layout(self):
        layouts = {
            tuple(
                FailureTopology(zones=4, seed=seed).domain_of(i)[0]
                for i in range(8)
            )
            for seed in range(6)
        }
        assert len(layouts) > 1

    def test_racks_cycle_per_block(self):
        topology = FailureTopology(zones=2, racks_per_zone=3, seed=0)
        racks = [topology.domain_of(i)[1] for i in range(12)]
        assert racks == [0, 0, 1, 1, 2, 2, 0, 0, 1, 1, 2, 2]

    def test_rejects_bad_values(self):
        with pytest.raises(ClusterError):
            FailureTopology(zones=0)
        with pytest.raises(ClusterError):
            FailureTopology(racks_per_zone=0)
        with pytest.raises(ClusterError):
            FailureTopology().domain_of(-1)


class TestKillSchedule:
    def test_entry_validation(self):
        with pytest.raises(ClusterError):
            KillEntry(zone=-1, step=0, duration=1)
        with pytest.raises(ClusterError):
            KillEntry(zone=0, step=-1, duration=1)
        with pytest.raises(ClusterError):
            KillEntry(zone=0, step=0, duration=0)

    def test_at_step_preserves_declaration_order(self):
        schedule = KillSchedule(
            (
                KillEntry(zone=2, step=5, duration=3),
                KillEntry(zone=0, step=5, duration=4),
                KillEntry(zone=1, step=9, duration=2),
            )
        )
        assert [e.zone for e in schedule.at_step(5)] == [2, 0]
        assert schedule.at_step(6) == ()
        assert bool(schedule)
        assert not KillSchedule()

    def test_parse_round_trip(self):
        schedule = KillSchedule.parse(["1:6:8", "0:12:4"])
        assert schedule.entries == (
            KillEntry(zone=1, step=6, duration=8),
            KillEntry(zone=0, step=12, duration=4),
        )
        assert schedule.describe() == [[1, 6, 8], [0, 12, 4]]

    @pytest.mark.parametrize("spec", ["1:6", "1:6:8:2", "a:6:8", "1::8", ""])
    def test_parse_rejects_malformed_specs(self, spec):
        with pytest.raises(ClusterError):
            KillSchedule.parse([spec])


class TestDomainConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ClusterError):
            FaultConfig(zone_mtbf_steps=0.0)
        with pytest.raises(ClusterError):
            FaultConfig(zone_mttr_steps=-1.0)
        with pytest.raises(ClusterError):
            FaultConfig(checkpoint_interval_frames=0)
        with pytest.raises(ClusterError):
            FaultConfig(checkpoint_power_w=-1.0)

    def test_kill_zone_must_exist_in_topology(self):
        with pytest.raises(ClusterError, match="zone 3"):
            FaultConfig(
                topology=FailureTopology(zones=3),
                kill_schedule=KillSchedule((KillEntry(zone=3, step=0, duration=1),)),
            )

    def test_enabled_reflects_domain_modes(self):
        assert FaultConfig(zone_mtbf_steps=20.0).enabled
        assert FaultConfig(
            kill_schedule=KillSchedule((KillEntry(zone=0, step=1, duration=1),))
        ).enabled
        assert FaultConfig(checkpoint_interval_frames=4).enabled
        # An empty schedule or a bare topology enables nothing.
        assert not FaultConfig(kill_schedule=KillSchedule()).enabled
        assert not FaultConfig(topology=FailureTopology(zones=3)).enabled


class TestInjectorDomainDraws:
    def test_scheduled_kills_consume_no_draws(self):
        schedule = KillSchedule((KillEntry(zone=0, step=3, duration=2),))
        a = FaultInjector(FaultConfig(kill_schedule=schedule, seed=1))
        b = FaultInjector(FaultConfig(kill_schedule=schedule, seed=999))
        for step in range(6):
            assert a.scheduled_kills(step) == b.scheduled_kills(step)
        assert a.scheduled_kills(3) == schedule.entries

    def test_zone_outage_draws_are_seeded(self):
        config = FaultConfig(
            topology=FailureTopology(zones=3, seed=5),
            zone_mtbf_steps=5.0,
            zone_mttr_steps=4.0,
            seed=5,
        )
        injector_a, injector_b = FaultInjector(config), FaultInjector(config)
        schedule_a = [injector_a.zone_outages() for _ in range(30)]
        schedule_b = [injector_b.zone_outages() for _ in range(30)]
        assert schedule_a == schedule_b
        hits = [outage for step in schedule_a for outage in step]
        assert hits  # MTBF 5 over 30 steps: the schedule actually fires
        assert all(0 <= zone < 3 and downtime >= 1 for zone, downtime in hits)

    def test_zone_draws_independent_of_server_stream(self):
        # Consuming per-server draws must not move the zonal schedule: the
        # two live on separate substreams of the same fault seed.
        config = FaultConfig(
            crash_mtbf_steps=3.0,
            topology=FailureTopology(zones=2, seed=8),
            zone_mtbf_steps=6.0,
            seed=8,
        )
        quiet, noisy = FaultInjector(config), FaultInjector(config)
        quiet_schedule, noisy_schedule = [], []
        for _ in range(25):
            quiet_schedule.append(quiet.zone_outages())
            for _ in range(10):  # a big fleet burning per-server draws
                noisy.crashes()
            noisy_schedule.append(noisy.zone_outages())
        assert quiet_schedule == noisy_schedule

    def test_describe_reports_domain_settings(self):
        injector = FaultInjector(
            FaultConfig(
                topology=FailureTopology(zones=3, racks_per_zone=2),
                zone_mtbf_steps=40.0,
                kill_schedule=KillSchedule((KillEntry(zone=1, step=6, duration=8),)),
                checkpoint_interval_frames=4,
            )
        )
        description = injector.describe()
        assert description["zones"] == 3
        assert description["racks_per_zone"] == 2
        assert description["zone_mtbf_steps"] == 40.0
        assert description["kill_schedule"] == [[1, 6, 8]]
        assert description["checkpoint_interval_frames"] == 4


def run_zonal(checkpoint_interval, *, duration=36, frames_per_video=16):
    """One pinned single-zone kill on a 6-server/3-zone fleet."""
    workload = WorkloadGenerator(
        PoissonTraffic(0.7),
        seed=3,
        playlist_videos=2,
        frames_per_video=frames_per_video,
        patience_steps=10,
    )
    cluster = ClusterOrchestrator(
        6,
        workload,
        admission=CapacityThreshold(max_sessions_per_server=3, max_queue=6),
        dispatcher=FailureAware(),
        controller_factory=static_factory(32, 4, 3.2),
        seed=3,
        faults=FaultConfig(
            max_retries=3,
            retry_backoff_steps=1,
            seed=7,
            topology=FailureTopology(zones=3, racks_per_zone=2, seed=7),
            kill_schedule=KillSchedule((KillEntry(zone=1, step=12, duration=6),)),
            checkpoint_interval_frames=checkpoint_interval,
        ),
    )
    return cluster.run(duration)


class TestCheckpointedRecovery:
    def test_recomputation_bounded_by_interval(self):
        interval = 4
        without = run_zonal(None)
        with_ckpt = run_zonal(interval)
        assert with_ckpt.retried > 0
        # Every retry resumes from the last multiple of the interval, so
        # it recomputes at most interval - 1 frames.
        assert with_ckpt.recomputed_frames <= with_ckpt.retried * (interval - 1)
        assert with_ckpt.recomputed_frames < without.recomputed_frames

    def test_checkpoint_cost_is_metered(self):
        without = run_zonal(None)
        with_ckpt = run_zonal(4)
        assert without.checkpoint_writes == 0
        assert without.checkpoint_energy_j == 0.0
        assert with_ckpt.checkpoint_writes > 0
        assert with_ckpt.checkpoint_energy_j > 0.0
        # The modeled bandwidth cost lands in the power traces.
        assert (
            with_ckpt.summary().fleet_energy_j > without.summary().fleet_energy_j
        )

    def test_summary_carries_checkpoint_ledger(self):
        result = run_zonal(4)
        summary = result.summary()
        assert summary.recomputed_frames == result.recomputed_frames
        assert summary.checkpoint_writes == result.checkpoint_writes
        assert summary.checkpoint_energy_j == pytest.approx(
            result.checkpoint_energy_j
        )

    def test_checkpoint_only_config_is_benign(self):
        # Checkpointing with no fault mode that can crash anything: writes
        # are metered but nothing retries and nothing fails.
        workload = WorkloadGenerator(
            PoissonTraffic(0.5), seed=2, playlist_videos=1, frames_per_video=8
        )
        cluster = ClusterOrchestrator(
            2,
            workload,
            admission=CapacityThreshold(max_sessions_per_server=3, max_queue=6),
            seed=2,
            faults=FaultConfig(checkpoint_interval_frames=4),
        )
        result = cluster.run(20)
        assert result.checkpoint_writes > 0
        assert result.retried == 0
        assert result.failed == 0
        assert result.recomputed_frames == 0


class TestFailureAwareRouting:
    def test_retries_leave_the_lost_zone(self):
        # With failure-aware routing, every re-dispatch of a session lost
        # to the zone-1 kill lands outside zone 1 (capacity permitting:
        # 4 of 6 servers, 2 zones, stay up).
        result = run_zonal(4)
        assert result.retried > 0
        zone_of = {}
        for event in result.fault_events:
            if event.kind == "crash":
                zone_of[event.server] = event.zone
        retry_records = [
            (server_index, key)
            for server_index, per_server in enumerate(result.records_by_server)
            for key in per_server
            if "#r" in key
        ]
        assert retry_records
        topology = FailureTopology(zones=3, racks_per_zone=2, seed=7)
        for server_index, _ in retry_records:
            assert topology.domain_of(server_index)[0] != 1
