"""Unit tests for repro.video.request."""

from __future__ import annotations

import pytest

from repro.errors import VideoError
from repro.video.catalog import make_sequence
from repro.video.request import TranscodingRequest
from repro.video.sequence import ResolutionClass


class TestTranscodingRequest:
    def test_defaults(self):
        sequence = make_sequence("Cactus", num_frames=10)
        request = TranscodingRequest(user_id="u1", sequence=sequence)
        assert request.target_fps == pytest.approx(24.0)
        assert request.bandwidth_mbps > 0
        assert request.resolution_class is ResolutionClass.HR
        assert request.num_frames == 10

    def test_lr_classification(self):
        sequence = make_sequence("BQMall", num_frames=10)
        request = TranscodingRequest(user_id="u2", sequence=sequence)
        assert request.resolution_class is ResolutionClass.LR

    def test_invalid_target_fps(self):
        sequence = make_sequence("Cactus", num_frames=5)
        with pytest.raises(VideoError):
            TranscodingRequest(user_id="u", sequence=sequence, target_fps=0)

    def test_invalid_bandwidth(self):
        sequence = make_sequence("Cactus", num_frames=5)
        with pytest.raises(VideoError):
            TranscodingRequest(user_id="u", sequence=sequence, bandwidth_mbps=-1)
