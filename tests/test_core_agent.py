"""Unit tests for repro.core.agent."""

from __future__ import annotations

import pytest

from repro.core.actions import ActionSet
from repro.core.agent import QLearningAgent
from repro.core.learning_rate import LearningRateParameters
from repro.core.phases import Phase
from repro.core.states import SystemState
from repro.errors import LearningError


S0 = SystemState(0, 1, 0, 0)
S1 = SystemState(1, 1, 0, 0)


def make_agent(num_actions=4, gamma=0.6, epsilon=0.2, seed=0, **lr_kwargs) -> QLearningAgent:
    return QLearningAgent(
        "test",
        ActionSet("a", tuple(range(num_actions))),
        gamma=gamma,
        learning_rate_params=LearningRateParameters(**lr_kwargs) if lr_kwargs else None,
        seed=seed,
        exploration_epsilon=epsilon,
    )


class TestCounters:
    def test_counts_start_at_zero(self):
        agent = make_agent()
        assert agent.state_action_count(S0, 0) == 0
        assert agent.action_count(0) == 0
        assert agent.min_action_count() == 0
        assert agent.known_states() == set()

    def test_update_increments_counters(self):
        agent = make_agent()
        agent.update(S0, 2, reward=1.0, next_state=S1, peer_min_counts=[])
        assert agent.state_action_count(S0, 2) == 1
        assert agent.action_count(2) == 1
        assert agent.known_states() == {S0}
        assert agent.transitions.total(S0, 2) == 1

    def test_min_action_count_tracks_least_tried(self):
        agent = make_agent(num_actions=2)
        agent.update(S0, 0, 1.0, S1, [])
        assert agent.min_action_count() == 0
        agent.update(S0, 1, 1.0, S1, [])
        assert agent.min_action_count() == 1


class TestUpdate:
    def test_q_learning_update_rule(self):
        agent = make_agent(gamma=0.5, beta=0.3, beta_prime=0.0)
        agent.q_table.set(S1, 0, 2.0)
        alpha = agent.update(S0, 1, reward=1.0, next_state=S1, peer_min_counts=[])
        # First visit: alpha = 0.3/1 = 0.3; target = 1 + 0.5*2 = 2.0.
        assert alpha == pytest.approx(0.3)
        assert agent.q_table.get(S0, 1) == pytest.approx(0.3 * 2.0)

    def test_peer_counts_enter_the_learning_rate(self):
        agent = make_agent()
        alpha_uncovered = agent.update(S0, 0, 0.0, S1, peer_min_counts=[0, 0])
        alpha_covered = agent.update(S0, 0, 0.0, S1, peer_min_counts=[10, 10])
        assert alpha_uncovered > alpha_covered

    def test_invalid_action_rejected(self):
        agent = make_agent(num_actions=2)
        with pytest.raises(LearningError):
            agent.update(S0, 5, 0.0, S1, [])

    def test_invalid_gamma_rejected(self):
        with pytest.raises(LearningError):
            make_agent(gamma=1.0)

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(LearningError):
            make_agent(epsilon=1.5)


class TestPhases:
    def test_new_state_is_exploration(self):
        agent = make_agent()
        assert agent.phase(S0, [5, 5]) is Phase.EXPLORATION

    def test_phase_advances_with_visits_and_peer_coverage(self):
        agent = make_agent(num_actions=2)
        for _ in range(3):
            agent.update(S0, 0, 0.5, S0, [5, 5])
        assert agent.phase(S0, [5, 5]) is Phase.EXPLORATION
        for _ in range(10):
            agent.update(S0, 0, 0.5, S0, [5, 5])
        assert agent.phase(S0, [5, 5]) in (
            Phase.EXPLORATION_EXPLOITATION,
            Phase.EXPLOITATION,
        )
        for _ in range(30):
            agent.update(S0, 0, 0.5, S0, [20, 20])
        assert agent.phase(S0, [20, 20]) is Phase.EXPLOITATION

    def test_uncovered_peers_block_phase_progress(self):
        """Eq. 3's second term: exploration cannot end while other agents
        still have untried actions (paper Sec. IV-B)."""
        agent = make_agent(num_actions=2)
        for _ in range(50):
            agent.update(S0, 0, 0.5, S0, [0, 0])
        assert agent.phase(S0, [0, 0]) is Phase.EXPLORATION

    def test_phase_helpers(self):
        assert Phase.EXPLORATION.is_random
        assert not Phase.EXPLOITATION.is_random
        assert Phase.EXPLOITATION.uses_chained_policy
        assert not Phase.EXPLORATION_EXPLOITATION.uses_chained_policy


class TestSelection:
    def test_greedy_picks_highest_q(self):
        agent = make_agent(num_actions=3)
        agent.q_table.set(S0, 1, 5.0)
        assert agent.select_greedy_action(S0) == 1

    def test_greedy_tie_prefers_current(self):
        agent = make_agent(num_actions=3)
        assert agent.select_greedy_action(S0, current=2) == 2

    def test_greedy_tie_without_current_is_a_valid_action(self):
        agent = make_agent(num_actions=3)
        assert agent.select_greedy_action(S0) in (0, 1, 2)

    def test_exploration_returns_valid_actions(self):
        agent = make_agent(num_actions=5, epsilon=1.0)
        choices = {agent.select_exploration_action(S0) for _ in range(50)}
        assert choices <= set(range(5))
        assert len(choices) > 1

    def test_exploration_with_zero_epsilon_is_greedy(self):
        agent = make_agent(num_actions=3, epsilon=0.0)
        agent.q_table.set(S0, 2, 1.0)
        assert agent.select_exploration_action(S0) == 2

    def test_select_action_dispatch(self):
        agent = make_agent(num_actions=3)
        agent.q_table.set(S0, 1, 3.0)
        assert agent.select_action(S0, Phase.EXPLORATION_EXPLOITATION) == 1
        assert agent.select_action(S0, Phase.EXPLOITATION) == 1
        assert agent.select_action(S0, Phase.EXPLORATION) in (0, 1, 2)

    def test_seed_reproducibility(self):
        a = make_agent(seed=7, epsilon=1.0)
        b = make_agent(seed=7, epsilon=1.0)
        assert [a.select_exploration_action(S0) for _ in range(20)] == [
            b.select_exploration_action(S0) for _ in range(20)
        ]


class TestSummary:
    def test_summary_fields(self):
        agent = make_agent()
        agent.update(S0, 0, 1.0, S1, [])
        summary = agent.summary()
        assert summary["name"] == "test"
        assert summary["actions"] == 4
        assert summary["visited_states"] == 1
        assert summary["q_entries"] >= 1


class TestCounterCaches:
    """ISSUE 5 satellite: cached counter extremes match the brute force."""

    def brute_force_min(self, agent):
        return min(agent._action_counts.values())

    def brute_force_phase(self, agent, state, peers):
        # The pre-cache implementation: Eq. 3 evaluated for every action.
        alphas = [
            agent.alpha(state, action, peers) for action in agent.actions.indices()
        ]
        best = min(alphas)
        if agent.learning_rate.below_exploitation_threshold(best):
            return Phase.EXPLOITATION
        if agent.learning_rate.below_exploration_threshold(best):
            return Phase.EXPLORATION_EXPLOITATION
        return Phase.EXPLORATION

    def test_counters_and_phases_unchanged_under_random_updates(self):
        import numpy as np

        agent = make_agent(num_actions=3)
        states = [SystemState(i, 1, 0, 0) for i in range(4)]
        rng = np.random.default_rng(7)
        peers = [0, 0]
        for step in range(400):
            state = states[rng.integers(len(states))]
            action = int(rng.integers(3))
            next_state = states[rng.integers(len(states))]
            peers = [int(rng.integers(6)), int(rng.integers(6))]
            agent.update(state, action, float(rng.normal()), next_state, peers)
            assert agent.min_action_count() == self.brute_force_min(agent)
            probe = states[rng.integers(len(states))]
            assert agent.phase(probe, peers) is self.brute_force_phase(
                agent, probe, peers
            )
            assert agent.max_state_count(probe) == max(
                (agent.state_action_count(probe, a) for a in agent.actions.indices()),
                default=0,
            )

    def test_min_action_count_cache_invalidated_on_update(self):
        agent = make_agent(num_actions=2)
        assert agent.min_action_count() == 0
        agent.update(S0, 0, 1.0, S1, [])
        assert agent.min_action_count() == 0
        agent.update(S0, 1, 1.0, S1, [])
        assert agent.min_action_count() == 1

    def test_rebuild_count_caches_after_direct_mutation(self):
        agent = make_agent(num_actions=2)
        agent.update(S0, 0, 1.0, S1, [])
        assert agent.min_action_count() == 0
        # Simulate a restore writing the raw counters directly.
        agent._action_counts[0] = 5
        agent._action_counts[1] = 3
        agent._state_action_counts[(S1, 1)] = 4
        agent.rebuild_count_caches()
        assert agent.min_action_count() == 3
        assert agent.max_state_count(S1) == 4
