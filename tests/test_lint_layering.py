"""Layering rules: LAY001 (DAG violation), LAY002 (undeclared layer)."""

from __future__ import annotations

from lint_fixtures import codes_of, lint_snippet
from repro.lint import LAYER_DAG
from repro.lint.rules_layering import LAZY_OK, layer_chain, layer_of


class TestLayerDag:
    def test_dag_is_acyclic(self):
        # The declared DAG must actually be one (sub-layers count as
        # distinct nodes; containment is resolved at edge-check time).
        order: list[str] = []
        visiting: set[str] = set()

        def visit(layer: str) -> None:
            if layer in order:
                return
            assert layer not in visiting, f"cycle through {layer}"
            visiting.add(layer)
            for dep in LAYER_DAG[layer]:
                visit(dep)
            visiting.discard(layer)
            order.append(layer)

        for layer in LAYER_DAG:
            visit(layer)
        assert set(order) == set(LAYER_DAG)

    def test_observe_only_and_model_independence_invariants(self):
        # The two contracts the ISSUE names, stated directly on the DAG.
        for forbidden in ("cluster", "manager", "core"):
            assert forbidden not in LAYER_DAG["telemetry"]
        for device_layer in ("hevc", "platform", "video"):
            for forbidden in ("cluster", "manager"):
                assert forbidden not in LAYER_DAG[device_layer]

    def test_layer_resolution(self):
        assert layer_of("repro.cluster.batch") == "cluster"
        assert layer_of("repro.metrics.records") == "metrics.records"
        assert layer_of("repro.metrics.aggregate") == "metrics"
        assert layer_of("repro.video.sequence") == "video.sequence"
        assert layer_of("repro") == "root"
        assert layer_chain("repro.video.sequence") == ["video.sequence", "video"]

    def test_lazy_edges_are_declared_sparingly(self):
        assert LAZY_OK == {("manager", "cluster")}


class TestLayerViolation:
    def test_telemetry_importing_cluster_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/telemetry/mod.py",
            """
            from repro.cluster.cluster import ClusterOrchestrator
            """,
        )
        assert codes_of(findings) == ["LAY001"]

    def test_video_importing_manager_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/video/mod.py",
            """
            import repro.manager.session
            """,
        )
        assert codes_of(findings) == ["LAY001"]

    def test_lazy_import_of_forbidden_edge_still_flagged(self, tmp_path):
        # Function scope is no escape hatch for an edge not in LAZY_OK.
        findings = lint_snippet(
            tmp_path,
            "repro/telemetry/mod.py",
            """
            def reach_in():
                from repro.cluster.cluster import ClusterOrchestrator
                return ClusterOrchestrator
            """,
        )
        assert codes_of(findings) == ["LAY001"]

    def test_declared_lazy_edge_passes_in_function_scope_only(self, tmp_path):
        lazy = lint_snippet(
            tmp_path,
            "repro/manager/mod.py",
            """
            def wire():
                from repro.cluster.batch import BatchStepper
                return BatchStepper
            """,
        )
        assert lazy == []
        module_scope = lint_snippet(
            tmp_path,
            "repro/manager/mod2.py",
            """
            from repro.cluster.batch import BatchStepper
            """,
        )
        assert codes_of(module_scope) == ["LAY001"]

    def test_sublayer_containment_satisfies_parent_grant(self, tmp_path):
        # cluster is granted 'video', which contains 'video.sequence'.
        findings = lint_snippet(
            tmp_path,
            "repro/cluster/mod.py",
            """
            from repro.video.sequence import ResolutionClass
            """,
        )
        assert findings == []

    def test_sublayer_cannot_import_upward_into_its_parent(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/video/sequence.py",
            """
            from repro.video.buffer import PlaybackBuffer
            """,
        )
        assert codes_of(findings) == ["LAY001"]

    def test_suppression(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/telemetry/mod.py",
            """
            from repro.cluster.cluster import ClusterOrchestrator  # repro: allow[LAY001]
            """,
        )
        assert findings == []


class TestUndeclaredLayer:
    def test_new_top_level_layer_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/federation/mod.py",
            """
            VERSION = 1
            """,
        )
        assert codes_of(findings) == ["LAY002"]

    def test_declared_layers_pass(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/telemetry/mod.py",
            """
            from repro.metrics.aggregate import linear_percentile
            """,
        )
        assert findings == []
