"""Unit tests for repro.cluster.workload (traffic models + generator)."""

from __future__ import annotations

import pytest

from repro.errors import ClusterError
from repro.cluster.workload import (
    CompositeTraffic,
    DiurnalTraffic,
    FlashCrowdTraffic,
    PoissonTraffic,
    WorkloadGenerator,
)
from repro.video.sequence import ResolutionClass


class TestTrafficModels:
    def test_poisson_rate_is_constant(self):
        model = PoissonTraffic(1.5)
        assert model.rate(0) == model.rate(123) == 1.5

    def test_poisson_rejects_negative_rate(self):
        with pytest.raises(ClusterError):
            PoissonTraffic(-0.1)

    def test_diurnal_oscillates_around_base(self):
        model = DiurnalTraffic(base_rate=2.0, amplitude=0.5, period=100)
        rates = [model.rate(step) for step in range(100)]
        assert max(rates) == pytest.approx(3.0, abs=0.01)
        assert min(rates) == pytest.approx(1.0, abs=0.01)
        assert sum(rates) / len(rates) == pytest.approx(2.0, abs=0.05)

    def test_diurnal_never_negative_at_full_amplitude(self):
        model = DiurnalTraffic(base_rate=1.0, amplitude=1.0, period=50)
        assert all(model.rate(step) >= 0.0 for step in range(100))

    def test_flash_crowd_spikes_inside_the_window(self):
        model = FlashCrowdTraffic(base_rate=1.0, peak_multiplier=5.0, start=10, duration=5)
        assert model.rate(9) == 1.0
        assert model.rate(10) == 5.0
        assert model.rate(14) == 5.0
        assert model.rate(15) == 1.0

    def test_composite_sums_rates(self):
        model = CompositeTraffic([PoissonTraffic(1.0), PoissonTraffic(0.5)])
        assert model.rate(0) == pytest.approx(1.5)

    def test_composite_rejects_empty(self):
        with pytest.raises(ClusterError):
            CompositeTraffic([])


class TestWorkloadGenerator:
    def test_same_seed_reproduces_the_trace(self):
        def trace(seed):
            generator = WorkloadGenerator(PoissonTraffic(1.0), seed=seed)
            return generator.generate(50)

        a, b = trace(7), trace(7)
        assert len(a) == len(b)
        for ea, eb in zip(a, b):
            assert ea.arrival_step == eb.arrival_step
            assert ea.request.user_id == eb.request.user_id
            assert ea.request.sequence.name == eb.request.sequence.name
            assert ea.request.sequence.seed == eb.request.sequence.seed
            assert ea.request.resolution_class is eb.request.resolution_class

    def test_different_seeds_differ(self):
        a = WorkloadGenerator(PoissonTraffic(2.0), seed=0).generate(50)
        b = WorkloadGenerator(PoissonTraffic(2.0), seed=1).generate(50)
        assert [e.arrival_step for e in a] != [e.arrival_step for e in b] or [
            e.request.sequence.name for e in a
        ] != [e.request.sequence.name for e in b]

    def test_arrival_count_tracks_the_rate(self):
        events = WorkloadGenerator(PoissonTraffic(2.0), seed=0).generate(300)
        # ~600 expected; allow generous slack for the Poisson draw.
        assert 450 <= len(events) <= 750

    def test_zero_rate_produces_no_events(self):
        assert WorkloadGenerator(PoissonTraffic(0.0), seed=0).generate(100) == []

    def test_user_ids_are_unique(self):
        events = WorkloadGenerator(PoissonTraffic(1.5), seed=3).generate(100)
        ids = [e.request.user_id for e in events]
        assert len(set(ids)) == len(ids)

    def test_hr_fraction_extremes(self):
        all_hr = WorkloadGenerator(PoissonTraffic(1.0), seed=0, hr_fraction=1.0).generate(40)
        all_lr = WorkloadGenerator(PoissonTraffic(1.0), seed=0, hr_fraction=0.0).generate(40)
        assert all(e.request.resolution_class is ResolutionClass.HR for e in all_hr)
        assert all(e.request.resolution_class is ResolutionClass.LR for e in all_lr)

    def test_playlist_shape(self):
        events = WorkloadGenerator(
            PoissonTraffic(1.0), seed=0, playlist_videos=3, frames_per_video=24
        ).generate(20)
        assert events, "expected some arrivals"
        for event in events:
            assert len(event.playlist) == 3
            assert event.total_frames == 72
            assert event.playlist[0] is event.request.sequence

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ClusterError):
            WorkloadGenerator(PoissonTraffic(1.0), hr_fraction=1.5)
        with pytest.raises(ClusterError):
            WorkloadGenerator(PoissonTraffic(1.0), playlist_videos=0)
        with pytest.raises(ClusterError):
            WorkloadGenerator(PoissonTraffic(1.0), frames_per_video=0)
        with pytest.raises(ClusterError):
            WorkloadGenerator(PoissonTraffic(1.0)).generate(-1)
