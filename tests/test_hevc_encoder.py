"""Unit tests for repro.hevc.encoder and repro.hevc.decoder."""

from __future__ import annotations

import pytest

from repro.errors import EncodingError
from repro.hevc.decoder import HevcDecoder
from repro.hevc.encoder import HevcEncoder
from repro.hevc.params import EncoderConfig


@pytest.fixture
def encoder() -> HevcEncoder:
    return HevcEncoder()


class TestEncodeFrame:
    def test_result_fields_are_consistent(self, encoder, hr_frame):
        config = EncoderConfig(qp=32, threads=8)
        result = encoder.encode_frame(hr_frame, config, frequency_ghz=3.2)
        assert result.frame_index == hr_frame.index
        assert result.qp == 32
        assert result.threads_used == 8
        assert result.fps == pytest.approx(1.0 / result.encode_time_s)
        assert result.bits > 0
        assert result.bitrate_mbps > 0
        assert result.psnr_db > 25.0
        assert result.effective_parallelism >= 1.0

    def test_more_threads_encode_faster(self, encoder, hr_frame):
        slow = encoder.encode_frame(hr_frame, EncoderConfig(qp=32, threads=1), 3.2)
        fast = encoder.encode_frame(hr_frame, EncoderConfig(qp=32, threads=10), 3.2)
        assert fast.encode_time_s < slow.encode_time_s

    def test_higher_frequency_encodes_faster(self, encoder, hr_frame):
        config = EncoderConfig(qp=32, threads=8)
        slow = encoder.encode_frame(hr_frame, config, 1.6)
        fast = encoder.encode_frame(hr_frame, config, 3.2)
        assert fast.fps == pytest.approx(slow.fps * 2.0, rel=1e-6)

    def test_contention_slows_down_encoding(self, encoder, hr_frame):
        config = EncoderConfig(qp=32, threads=8)
        free = encoder.encode_frame(hr_frame, config, 3.2, contention_scale=1.0)
        contended = encoder.encode_frame(hr_frame, config, 3.2, contention_scale=0.5)
        assert contended.encode_time_s > free.encode_time_s

    def test_contention_never_pushes_parallelism_below_one(self, encoder, hr_frame):
        config = EncoderConfig(qp=32, threads=2)
        result = encoder.encode_frame(hr_frame, config, 3.2, contention_scale=0.1)
        assert result.effective_parallelism >= 1.0

    def test_quality_does_not_depend_on_threads(self, encoder, hr_frame):
        one = encoder.encode_frame(hr_frame, EncoderConfig(qp=32, threads=1), 3.2)
        many = encoder.encode_frame(hr_frame, EncoderConfig(qp=32, threads=10), 3.2)
        assert one.psnr_db == pytest.approx(many.psnr_db)
        assert one.bits == pytest.approx(many.bits)

    def test_invalid_inputs_raise(self, encoder, hr_frame):
        config = EncoderConfig(qp=32, threads=4)
        with pytest.raises(EncodingError):
            encoder.encode_frame(hr_frame, config, 0.0)
        with pytest.raises(EncodingError):
            encoder.encode_frame(hr_frame, config, 3.2, contention_scale=0.0)
        with pytest.raises(EncodingError):
            encoder.encode_frame(hr_frame, config, 3.2, contention_scale=1.5)

    def test_invalid_delivery_fps_raises(self):
        with pytest.raises(EncodingError):
            HevcEncoder(delivery_fps=0.0)

    def test_activity_factor_bounded(self, encoder, hr_frame):
        for threads in (1, 4, 8, 12):
            activity = encoder.activity_factor(hr_frame, EncoderConfig(qp=32, threads=threads))
            assert 0.0 < activity <= 1.0


class TestDecoder:
    def test_decode_is_fast(self, hr_frame):
        decoder = HevcDecoder()
        decoded = decoder.decode_frame(hr_frame, 3.2)
        assert decoded.decode_time_s < 0.01
        assert decoded.frame is hr_frame

    def test_decode_scales_with_frequency(self, hr_frame):
        decoder = HevcDecoder()
        assert decoder.decode_frame(hr_frame, 1.6).decode_time_s == pytest.approx(
            2.0 * decoder.decode_frame(hr_frame, 3.2).decode_time_s
        )

    def test_invalid_frequency_raises(self, hr_frame):
        with pytest.raises(EncodingError):
            HevcDecoder().decode_frame(hr_frame, 0.0)
