"""RNG discipline rules: RNG101 (global RNG), RNG102 (seedless), RNG103
(wall-clock/OS entropy in simulation code)."""

from __future__ import annotations

from lint_fixtures import codes_of, lint_snippet


class TestGlobalRngCall:
    def test_numpy_global_api_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/cluster/mod.py",
            """
            import numpy as np

            def jitter():
                return np.random.normal(0.0, 1.0)
            """,
        )
        assert codes_of(findings) == ["RNG101"]

    def test_module_level_call_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/cluster/mod.py",
            """
            import numpy as np

            NOISE = np.random.rand(4)
            """,
        )
        assert codes_of(findings) == ["RNG101"]

    def test_stdlib_random_module_functions_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/cluster/mod.py",
            """
            import random

            def pick(items):
                return random.choice(items)
            """,
        )
        assert codes_of(findings) == ["RNG101"]

    def test_from_import_alias_resolved(self, tmp_path):
        # The alias table must see through `from numpy import random as r`.
        findings = lint_snippet(
            tmp_path,
            "repro/cluster/mod.py",
            """
            from numpy import random as r

            def jitter():
                return r.standard_normal()
            """,
        )
        assert codes_of(findings) == ["RNG101"]

    def test_seeded_generator_draw_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/cluster/mod.py",
            """
            import numpy as np

            def jitter(rng: np.random.Generator):
                return rng.normal(0.0, 1.0)
            """,
        )
        assert findings == []

    def test_suppression_on_line(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/cluster/mod.py",
            """
            import numpy as np

            NOISE = np.random.rand(4)  # repro: allow[RNG101]
            """,
        )
        assert findings == []


class TestSeedlessRng:
    def test_zero_arg_default_rng_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/cluster/mod.py",
            """
            import numpy as np

            def stream():
                return np.random.default_rng()
            """,
        )
        assert codes_of(findings) == ["RNG102"]

    def test_explicit_none_seed_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/cluster/mod.py",
            """
            import numpy as np

            def stream():
                return np.random.default_rng(seed=None)
            """,
        )
        assert codes_of(findings) == ["RNG102"]

    def test_stdlib_random_class_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/cluster/mod.py",
            """
            import random

            def stream():
                return random.Random()
            """,
        )
        assert codes_of(findings) == ["RNG102"]

    def test_seeded_constructions_pass(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/cluster/mod.py",
            """
            import random

            import numpy as np

            def streams(seed, maybe_rng):
                return (
                    np.random.default_rng(seed),
                    np.random.default_rng(maybe_rng),
                    random.Random(seed),
                )
            """,
        )
        assert findings == []

    def test_standalone_suppression_covers_next_line(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/cluster/mod.py",
            """
            import numpy as np

            def stream():
                # repro: allow[RNG102]
                return np.random.default_rng()
            """,
        )
        assert findings == []


class TestWallClockEntropy:
    def test_time_time_flagged_in_simulation_code(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/cluster/mod.py",
            """
            import time

            def now():
                return time.time()
            """,
        )
        assert codes_of(findings) == ["RNG103"]

    def test_datetime_and_urandom_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/core/mod.py",
            """
            import os
            from datetime import datetime

            def entropy():
                return datetime.now(), os.urandom(8)
            """,
        )
        assert codes_of(findings) == ["RNG103", "RNG103"]

    def test_telemetry_layer_is_exempt(self, tmp_path):
        # The profiler measures real wall time by design.
        findings = lint_snippet(
            tmp_path,
            "repro/telemetry/mod.py",
            """
            import time

            def now():
                return time.time()
            """,
        )
        assert findings == []

    def test_non_repro_files_are_exempt(self, tmp_path):
        # `repro lint tests` must not flag wall-clock use outside the package.
        findings = lint_snippet(
            tmp_path,
            "mod.py",
            """
            import time

            def now():
                return time.time()
            """,
        )
        assert findings == []

    def test_perf_counter_is_not_banned(self, tmp_path):
        # Profiling-grade timers are fine; determinism bans *identity* and
        # *entropy* sources, not duration measurement.
        findings = lint_snippet(
            tmp_path,
            "repro/cluster/mod.py",
            """
            import time

            def elapsed(start):
                return time.perf_counter() - start
            """,
        )
        assert findings == []
