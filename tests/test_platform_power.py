"""Unit tests for repro.platform.power."""

from __future__ import annotations

import pytest

from repro.errors import PlatformError
from repro.platform.power import PowerModel, PowerModelParameters, VoltageTable


class TestVoltageTable:
    def test_default_table_endpoints(self):
        table = VoltageTable()
        assert table.max_frequency_ghz == pytest.approx(3.2)
        assert table.voltage(3.2) == pytest.approx(table.max_voltage)

    def test_voltage_is_monotone_in_frequency(self):
        table = VoltageTable()
        freqs = [1.2, 1.6, 1.9, 2.3, 2.6, 2.9, 3.2]
        volts = [table.voltage(f) for f in freqs]
        assert volts == sorted(volts)

    def test_interpolation_between_points(self):
        table = VoltageTable({1.0: 0.8, 2.0: 1.0})
        assert table.voltage(1.5) == pytest.approx(0.9)

    def test_clamping_outside_range(self):
        table = VoltageTable({1.0: 0.8, 2.0: 1.0})
        assert table.voltage(0.5) == pytest.approx(0.8)
        assert table.voltage(3.0) == pytest.approx(1.0)

    def test_relative_quantities_bounded(self):
        table = VoltageTable()
        for f in (1.2, 1.9, 2.6, 3.2):
            assert 0.0 < table.relative_voltage(f) <= 1.0
            assert 0.0 < table.relative_dynamic(f) <= 1.0
        assert table.relative_dynamic(3.2) == pytest.approx(1.0)

    def test_invalid_tables_rejected(self):
        with pytest.raises(PlatformError):
            VoltageTable({1.0: 0.8})
        with pytest.raises(PlatformError):
            VoltageTable({1.0: 1.0, 2.0: 0.9})
        with pytest.raises(PlatformError):
            VoltageTable({-1.0: 0.5, 2.0: 1.0})

    def test_invalid_query_rejected(self):
        with pytest.raises(PlatformError):
            VoltageTable().voltage(0.0)


class TestPowerModelParameters:
    def test_defaults_valid(self):
        PowerModelParameters()

    def test_validation(self):
        with pytest.raises(PlatformError):
            PowerModelParameters(core_dynamic_w=0.0)
        with pytest.raises(PlatformError):
            PowerModelParameters(smt_activity_bonus=2.0)
        with pytest.raises(PlatformError):
            PowerModelParameters(idle_activity_fraction=-0.1)


class TestPowerModel:
    def test_busy_core_power_increases_with_frequency(self):
        model = PowerModel()
        powers = [model.busy_core_power(f, 1.0) for f in (1.6, 2.3, 2.9, 3.2)]
        assert powers == sorted(powers)

    def test_busy_core_power_increases_with_activity(self):
        model = PowerModel()
        assert model.busy_core_power(3.2, 1.0) > model.busy_core_power(3.2, 0.3)

    def test_smt_sibling_adds_power(self):
        model = PowerModel()
        assert model.busy_core_power(3.2, 1.0, smt_threads=2) > model.busy_core_power(
            3.2, 1.0, smt_threads=1
        )

    def test_idle_core_cheaper_than_busy_core(self):
        model = PowerModel()
        assert model.idle_core_power(3.2) < model.busy_core_power(3.2, 1.0)

    def test_idle_core_cheaper_at_low_frequency(self):
        model = PowerModel()
        assert model.idle_core_power(1.2) < model.idle_core_power(3.2)

    def test_package_power_includes_base(self):
        model = PowerModel()
        assert model.package_power([], []) == pytest.approx(model.params.base_power_w)

    def test_package_power_adds_components(self):
        model = PowerModel()
        power = model.package_power([(3.2, 1.0, 1)], [1.2] * 15)
        expected = (
            model.params.base_power_w
            + model.busy_core_power(3.2, 1.0, 1)
            + 15 * model.idle_core_power(1.2)
        )
        assert power == pytest.approx(expected)

    def test_single_video_power_matches_fig2_range(self):
        """Fig. 2 calibration: one HR encode at 3.2 GHz spans roughly 50-90 W."""
        model = PowerModel()
        one_thread = model.package_power([(3.2, 1.0, 1)], [1.2] * 15)
        ten_threads = model.package_power([(3.2, 0.7, 1)] * 10, [1.2] * 6)
        assert 45.0 <= one_thread <= 65.0
        assert 70.0 <= ten_threads <= 95.0

    def test_invalid_activity_rejected(self):
        with pytest.raises(PlatformError):
            PowerModel().busy_core_power(3.2, 1.5)

    def test_invalid_smt_threads_rejected(self):
        with pytest.raises(PlatformError):
            PowerModel().busy_core_power(3.2, 1.0, smt_threads=0)
