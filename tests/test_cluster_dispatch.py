"""Property-based tests for the cluster dispatch policies."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.errors import ClusterError
from repro.cluster.dispatch import FailureAware, LeastLoaded, PowerAware, RoundRobin
from repro.cluster.state import ClusterSnapshot, ServerSnapshot
from repro.cluster.workload import PoissonTraffic, WorkloadGenerator


def make_event(seed=0):
    return WorkloadGenerator(PoissonTraffic(1.0), seed=seed)._build_event(0)


def make_snapshot(loads, powers, last_actives=None):
    # Default: power readings are fresh (taken with the current loads).
    last_actives = last_actives if last_actives is not None else list(loads)
    servers = tuple(
        ServerSnapshot(
            server_index=i,
            active_sessions=load,
            last_power_w=power,
            sessions_dispatched=0,
            last_active_sessions=last_active,
        )
        for i, (load, power, last_active) in enumerate(
            zip(loads, powers, last_actives)
        )
    )
    return ClusterSnapshot(step=0, servers=servers, queue_length=0, power_cap_w=480.0)


# Random fleets: 1-8 servers with arbitrary loads and powers.
fleets = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=12),
        st.floats(min_value=10.0, max_value=150.0, allow_nan=False),
    ),
    min_size=1,
    max_size=8,
)


class TestSelectionIsValid:
    @given(fleet=fleets)
    @settings(max_examples=100, deadline=None)
    def test_every_policy_picks_exactly_one_valid_server(self, fleet):
        loads = [load for load, _ in fleet]
        powers = [power for _, power in fleet]
        snapshot = make_snapshot(loads, powers)
        event = make_event()
        for policy in (RoundRobin(), LeastLoaded(), PowerAware(), FailureAware()):
            index = policy.select(event, snapshot)
            assert isinstance(index, int)
            assert 0 <= index < len(fleet)

    def test_empty_fleet_rejected(self):
        snapshot = ClusterSnapshot(step=0, servers=(), queue_length=0, power_cap_w=0.0)
        for policy in (RoundRobin(), LeastLoaded(), PowerAware(), FailureAware()):
            with pytest.raises(ClusterError):
                policy.select(make_event(), snapshot)


class TestLeastLoaded:
    @given(fleet=fleets)
    @settings(max_examples=100, deadline=None)
    def test_never_picks_a_strictly_busier_server(self, fleet):
        loads = [load for load, _ in fleet]
        powers = [power for _, power in fleet]
        snapshot = make_snapshot(loads, powers)
        chosen = LeastLoaded().select(make_event(), snapshot)
        assert loads[chosen] == min(loads)

    def test_idle_server_beats_busy_one(self):
        snapshot = make_snapshot([3, 0, 2], [90.0, 30.0, 70.0])
        assert LeastLoaded().select(make_event(), snapshot) == 1

    def test_ties_break_to_the_lowest_index(self):
        snapshot = make_snapshot([1, 1, 1], [50.0, 40.0, 30.0])
        assert LeastLoaded().select(make_event(), snapshot) == 0


class TestPowerAware:
    @given(fleet=fleets)
    @settings(max_examples=100, deadline=None)
    def test_picks_a_minimum_power_server_on_fresh_readings(self, fleet):
        loads = [load for load, _ in fleet]
        powers = [power for _, power in fleet]
        # Fresh readings (last_active == active): projection equals the raw
        # reading, so the minimum-power server must win.
        snapshot = make_snapshot(loads, powers)
        chosen = PowerAware().select(make_event(), snapshot)
        assert powers[chosen] == min(powers)

    def test_burst_does_not_pile_onto_one_server(self):
        # Both servers were last measured idle at 50 W, but server 0 already
        # took 2 sessions this step: the projection must steer the next
        # request to server 1 even though the raw readings are equal.
        snapshot = make_snapshot(
            [2, 0], [50.0, 50.0], last_actives=[0, 0]
        )
        assert PowerAware().select(make_event(), snapshot) == 1

    def test_estimate_validated(self):
        with pytest.raises(ClusterError):
            PowerAware(watts_per_session_estimate=0.0)


def make_failure_snapshot(rows, retry_of_zone=None):
    """rows: (active, crash_count, uptime_steps, zone) per server."""
    servers = tuple(
        ServerSnapshot(
            server_index=i,
            active_sessions=active,
            last_power_w=50.0,
            sessions_dispatched=0,
            zone=zone,
            crash_count=crashes,
            uptime_steps=uptime,
        )
        for i, (active, crashes, uptime, zone) in enumerate(rows)
    )
    return ClusterSnapshot(
        step=0,
        servers=servers,
        queue_length=0,
        power_cap_w=480.0,
        retry_of_zone=retry_of_zone,
    )


class TestFailureAware:
    def test_prefers_crash_free_server_at_equal_load(self):
        snapshot = make_failure_snapshot(
            [(1, 2, 50, 0), (1, 0, 50, 1), (1, 1, 50, 2)]
        )
        assert FailureAware().select(make_event(), snapshot) == 1

    def test_prefers_longest_uptime_at_equal_history(self):
        snapshot = make_failure_snapshot(
            [(1, 0, 10, 0), (1, 0, 80, 1), (1, 0, 40, 2)]
        )
        assert FailureAware().select(make_event(), snapshot) == 1

    def test_load_still_matters(self):
        # A flaky-but-idle server can beat a reliable-but-saturated one:
        # the score is load-per-trust, not trust alone.
        snapshot = make_failure_snapshot(
            [(9, 0, 100, 0), (0, 1, 100, 1)]
        )
        assert FailureAware().select(make_event(), snapshot) == 1

    def test_retry_avoids_the_lost_zone(self):
        # Server 0 is the best-scoring machine, but the decision is a
        # retry of a session zone 0 just lost: anti-affinity must push
        # the session to the best server *outside* zone 0.
        rows = [(0, 0, 100, 0), (2, 1, 30, 1), (1, 0, 60, 1)]
        ordinary = FailureAware().select(make_event(), make_failure_snapshot(rows))
        assert ordinary == 0
        retry = FailureAware().select(
            make_event(), make_failure_snapshot(rows, retry_of_zone=0)
        )
        assert retry == 2

    def test_retry_falls_back_into_zone_when_alone(self):
        # Anti-affinity is a preference, not a constraint: when every
        # dispatchable server is in the lost zone, the retry still lands.
        rows = [(1, 1, 10, 0), (0, 0, 50, 0)]
        chosen = FailureAware().select(
            make_event(), make_failure_snapshot(rows, retry_of_zone=0)
        )
        assert chosen == 1

    def test_ties_break_by_index(self):
        snapshot = make_failure_snapshot(
            [(1, 0, 50, 0), (1, 0, 50, 1), (1, 0, 50, 2)]
        )
        assert FailureAware().select(make_event(), snapshot) == 0


class TestRoundRobin:
    def test_cycles_through_all_servers(self):
        snapshot = make_snapshot([0, 0, 0], [30.0, 30.0, 30.0])
        policy = RoundRobin()
        picks = [policy.select(make_event(), snapshot) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_survives_fleet_resize(self):
        policy = RoundRobin()
        big = make_snapshot([0] * 4, [30.0] * 4)
        small = make_snapshot([0] * 2, [30.0] * 2)
        assert policy.select(make_event(), big) == 0
        assert policy.select(make_event(), big) == 1
        # Shrinking the fleet must still yield a valid index.
        assert policy.select(make_event(), small) in (0, 1)


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=20, deadline=None)
def test_seeded_workload_traces_are_reproducible(seed):
    a = WorkloadGenerator(PoissonTraffic(1.0), seed=seed).generate(20)
    b = WorkloadGenerator(PoissonTraffic(1.0), seed=seed).generate(20)
    assert [(e.arrival_step, e.request.user_id, e.request.sequence.name, e.request.sequence.seed) for e in a] == [
        (e.arrival_step, e.request.user_id, e.request.sequence.name, e.request.sequence.seed) for e in b
    ]
