"""Unit tests for repro.hevc.rd_model."""

from __future__ import annotations

import pytest

from repro.errors import EncodingError
from repro.hevc.params import EncoderConfig, Preset
from repro.hevc.rd_model import RateDistortionModel
from repro.video.content import FrameContent
from repro.video.sequence import Frame


def frame_with(complexity=1.0, motion=0.4, scene_change=False, width=1920, height=1080):
    return Frame(
        index=0,
        width=width,
        height=height,
        content=FrameContent(complexity=complexity, motion=motion, scene_change=scene_change),
    )


@pytest.fixture
def model() -> RateDistortionModel:
    return RateDistortionModel()


class TestPsnr:
    def test_psnr_decreases_with_qp(self, model):
        frame = frame_with()
        psnrs = [model.psnr_db(frame, EncoderConfig(qp=qp, threads=1)) for qp in (22, 27, 32, 37)]
        assert psnrs == sorted(psnrs, reverse=True)

    def test_psnr_in_plausible_range_for_agent_qps(self, model):
        frame = frame_with()
        for qp in (22, 25, 27, 29, 32, 35, 37):
            psnr = model.psnr_db(frame, EncoderConfig(qp=qp, threads=1))
            assert 30.0 <= psnr <= 45.0

    def test_complex_content_lowers_psnr(self, model):
        config = EncoderConfig(qp=32, threads=1)
        assert model.psnr_db(frame_with(complexity=1.5), config) < model.psnr_db(
            frame_with(complexity=0.8), config
        )

    def test_slow_preset_improves_psnr(self, model):
        frame = frame_with()
        ultrafast = model.psnr_db(frame, EncoderConfig(qp=32, threads=1, preset=Preset.ULTRAFAST))
        slow = model.psnr_db(frame, EncoderConfig(qp=32, threads=1, preset=Preset.SLOW))
        assert slow > ultrafast

    def test_psnr_is_clipped(self, model):
        frame = frame_with(complexity=2.0, motion=1.0)
        low = model.psnr_db(frame, EncoderConfig(qp=51, threads=1))
        assert low >= model.params.psnr_floor_db


class TestBitrate:
    def test_bitrate_decreases_with_qp(self, model):
        frame = frame_with()
        rates = [
            model.bitrate_mbps(frame, EncoderConfig(qp=qp, threads=1), 24.0)
            for qp in (22, 27, 32, 37)
        ]
        assert rates == sorted(rates, reverse=True)

    def test_six_qp_steps_halve_the_rate(self, model):
        frame = frame_with()
        rate_26 = model.bitrate_mbps(frame, EncoderConfig(qp=26, threads=1), 24.0)
        rate_32 = model.bitrate_mbps(frame, EncoderConfig(qp=32, threads=1), 24.0)
        assert rate_26 / rate_32 == pytest.approx(2.0, rel=0.01)

    def test_intra_frames_cost_more_bits(self, model):
        config = EncoderConfig(qp=32, threads=1)
        intra = model.frame_bits(frame_with(scene_change=True), config)
        inter = model.frame_bits(frame_with(scene_change=False), config)
        assert intra > inter

    def test_bitrate_scales_with_resolution(self, model):
        config = EncoderConfig(qp=32, threads=1)
        hr = model.bitrate_mbps(frame_with(), config, 24.0)
        lr = model.bitrate_mbps(frame_with(width=832, height=480), config, 24.0)
        assert hr / lr == pytest.approx((1920 * 1080) / (832 * 480), rel=1e-6)

    def test_slow_preset_compresses_better(self, model):
        frame = frame_with()
        ultrafast = model.frame_bits(frame, EncoderConfig(qp=32, threads=1, preset=Preset.ULTRAFAST))
        slow = model.frame_bits(frame, EncoderConfig(qp=32, threads=1, preset=Preset.SLOW))
        assert slow < ultrafast

    def test_bandwidth_is_bitrate_over_eight(self, model):
        frame = frame_with()
        config = EncoderConfig(qp=32, threads=1)
        assert model.bandwidth_mbytes_per_s(frame, config, 24.0) == pytest.approx(
            model.bitrate_mbps(frame, config, 24.0) / 8.0
        )

    def test_invalid_delivery_fps_raises(self, model):
        with pytest.raises(EncodingError):
            model.bitrate_mbps(frame_with(), EncoderConfig(qp=32, threads=1), 0.0)


class TestHelpers:
    def test_expected_psnr_range_ordering(self, model):
        low, high = model.expected_psnr_range(22, 37)
        assert low < high

    def test_expected_psnr_range_invalid(self, model):
        with pytest.raises(EncodingError):
            model.expected_psnr_range(37, 22)

    def test_mse_psnr_roundtrip(self, model):
        for psnr in (30.0, 40.0, 50.0):
            mse = RateDistortionModel.mse_from_psnr(psnr)
            assert RateDistortionModel.psnr_from_mse(mse) == pytest.approx(psnr)

    def test_psnr_from_invalid_mse(self, model):
        with pytest.raises(EncodingError):
            RateDistortionModel.psnr_from_mse(0.0)
