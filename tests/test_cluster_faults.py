"""Fault injection and failure recovery: crashes, stragglers, retries.

Covers the contracts of the fault subsystem:

* **Determinism** — the same ``(workload seed, cluster seed, fault seed)``
  produces the identical fault schedule and the identical run on both
  stepping engines: full :class:`~repro.cluster.cluster.ClusterResult`
  equality (frame records, power traces, ledger, fault events), identical
  trace span streams, and identical final Q-tables.  A no-op fault config
  is bitwise identical to running without one.  Correlated zone outages
  (declarative kill schedules and MTBF-drawn) and checkpointed recovery
  hold the same bar.
* **Schedule isolation** — the fault schedule is a pure function of the
  fault seed: turning telemetry on, evaluating SLOs online, or resizing
  the fleet mid-run (autoscaling) must not move a single fault draw.
* **Recovery semantics** — crashed sessions are salvaged and re-dispatched
  under ``<user>#r<attempt>`` record keys with their learning migrated
  (resuming from the last checkpoint when checkpointing is on); the retry
  budget bounds the attempts; the ``failed``/``retried`` ledger reconciles
  with ``admitted``; the drain tail is fault-free; raw user ids that could
  collide with the reserved retry-key marker are rejected at intake.
* **Brownout-aware autoscaling** — a sustained brownout level produces
  exactly one appropriately-sized scale-up (no flapping) and freezes
  scale-downs until the level clears.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.cluster import (
    AutoscaleSignals,
    BrownoutController,
    CapacityThreshold,
    ClusterOrchestrator,
    ClusterSnapshot,
    FailureAware,
    FailureTopology,
    FaultConfig,
    FaultInjector,
    KillEntry,
    KillSchedule,
    PoissonTraffic,
    ReactiveThreshold,
    ServerSnapshot,
    WorkloadGenerator,
)
from repro.core.persistence import snapshot_controller
from repro.errors import ClusterError
from repro.manager.factories import static_factory
from repro.metrics.cluster import ClusterSummary
from repro.telemetry import QueueWaitObjective, TelemetryConfig
from repro.telemetry.trace import TERMINAL_KINDS, ListTraceSink


def run_cluster(
    engine,
    *,
    faults,
    seed=3,
    fault_seed=None,
    servers=3,
    rate=0.5,
    duration=40,
    playlist_videos=2,
    frames_per_video=8,
    patience_steps=10,
    controller_factory=None,
    autoscaler=None,
    brownout=None,
    max_servers=8,
    provision_warmup_steps=2,
    trace=False,
    dispatcher=None,
    slo=None,
):
    if fault_seed is not None and faults is not None:
        faults = dataclasses.replace(faults, seed=fault_seed)
    workload = WorkloadGenerator(
        PoissonTraffic(rate),
        seed=seed,
        playlist_videos=playlist_videos,
        frames_per_video=frames_per_video,
        patience_steps=patience_steps,
    )
    cluster = ClusterOrchestrator(
        servers,
        workload,
        admission=CapacityThreshold(max_sessions_per_server=3, max_queue=6),
        dispatcher=dispatcher,
        controller_factory=controller_factory,
        seed=seed,
        engine=engine,
        autoscaler=autoscaler,
        max_servers=max_servers,
        provision_warmup_steps=provision_warmup_steps,
        brownout=brownout,
        faults=faults,
    )
    sink = ListTraceSink() if trace else None
    telemetry = None
    if trace or slo:
        telemetry = TelemetryConfig(trace_sink=sink, slo=slo or ())
    result = cluster.run(duration, telemetry=telemetry)
    return cluster, result, sink


MIXED_FAULTS = FaultConfig(
    crash_mtbf_steps=40.0,
    crash_mttr_steps=6.0,
    straggler_mtbf_steps=60.0,
    straggler_duration_steps=4.0,
    warmup_failure_rate=0.3,
    max_retries=2,
    retry_backoff_steps=1,
    seed=5,
)

CRASH_ONLY = FaultConfig(
    crash_mtbf_steps=25.0, crash_mttr_steps=5.0, max_retries=3,
    retry_backoff_steps=1, seed=9,
)

ZONAL_TOPOLOGY = FailureTopology(zones=3, racks_per_zone=2, seed=7)

# Pinned declarative schedules: the exact zones die at the exact steps.
ZONAL_KILL_A = FaultConfig(
    max_retries=3,
    retry_backoff_steps=1,
    seed=7,
    topology=ZONAL_TOPOLOGY,
    kill_schedule=KillSchedule((KillEntry(zone=1, step=6, duration=8),)),
    checkpoint_interval_frames=4,
)

ZONAL_KILL_B = FaultConfig(
    crash_mtbf_steps=40.0,
    crash_mttr_steps=6.0,
    max_retries=2,
    retry_backoff_steps=1,
    seed=11,
    topology=ZONAL_TOPOLOGY,
    kill_schedule=KillSchedule(
        (KillEntry(zone=0, step=5, duration=4), KillEntry(zone=2, step=12, duration=6))
    ),
)

# Randomized correlated outages: zones die on MTBF-drawn schedules.
ZONAL_RANDOM = FaultConfig(
    max_retries=3,
    retry_backoff_steps=1,
    seed=13,
    topology=ZONAL_TOPOLOGY,
    zone_mtbf_steps=30.0,
    zone_mttr_steps=5.0,
    checkpoint_interval_frames=4,
)


def controller_states(cluster):
    """(session id, learned-state snapshot) for every session ever run."""
    return [
        (session.session_id, snapshot_controller(session.controller))
        for orchestrator in cluster.orchestrators
        for session in orchestrator.sessions
    ]


def assert_identical(a, b):
    assert a.records_by_server == b.records_by_server
    assert a.samples_by_server == b.samples_by_server
    assert a.queue_waits == b.queue_waits
    assert a.fleet_trace == b.fleet_trace
    assert a.fault_events == b.fault_events
    assert (a.arrivals, a.admitted, a.rejected, a.dropped, a.abandoned) == (
        b.arrivals, b.admitted, b.rejected, b.dropped, b.abandoned
    )
    assert (a.failed, a.retried, a.steps) == (b.failed, b.retried, b.steps)
    assert a.summary() == b.summary()


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ClusterError):
            FaultConfig(crash_mtbf_steps=0.0)
        with pytest.raises(ClusterError):
            FaultConfig(crash_mttr_steps=-1.0)
        with pytest.raises(ClusterError):
            FaultConfig(straggler_mtbf_steps=-2.0)
        with pytest.raises(ClusterError):
            FaultConfig(warmup_failure_rate=1.5)
        with pytest.raises(ClusterError):
            FaultConfig(max_retries=-1)

    def test_enabled_reflects_modes(self):
        assert not FaultConfig().enabled
        assert FaultConfig(crash_mtbf_steps=10.0).enabled
        assert FaultConfig(straggler_mtbf_steps=10.0).enabled
        assert FaultConfig(warmup_failure_rate=0.1).enabled

    def test_retry_backoff_is_exponential(self):
        injector = FaultInjector(
            FaultConfig(crash_mtbf_steps=10.0, retry_backoff_steps=2)
        )
        assert injector.retry_ready_step(100, 1) == 102
        assert injector.retry_ready_step(100, 2) == 104
        assert injector.retry_ready_step(100, 3) == 108


class TestEngineEquivalence:
    """Bitwise scalar/batch equality under seeded fault schedules."""

    @pytest.mark.parametrize("fault_seed", [5, 17])
    def test_mixed_fault_schedule(self, fault_seed):
        # Crash + straggler + warm-up failure mix with autoscaling: the
        # full result, the span stream and every final Q-table must match.
        autoscale = lambda: ReactiveThreshold(
            sessions_per_server=3, scale_down_cooldown_steps=8
        )
        ca, ra, sa = run_cluster(
            "scalar", faults=MIXED_FAULTS, fault_seed=fault_seed,
            autoscaler=autoscale(), trace=True,
        )
        cb, rb, sb = run_cluster(
            "batch", faults=MIXED_FAULTS, fault_seed=fault_seed,
            autoscaler=autoscale(), trace=True,
        )
        assert_identical(ra, rb)
        assert sa.spans == sb.spans
        assert controller_states(ca) == controller_states(cb)
        # The schedule actually exercised the machinery.
        kinds = {event.kind for event in ra.fault_events}
        assert "crash" in kinds

    def test_crash_only_schedule_with_static_controllers(self):
        _, ra, sa = run_cluster(
            "scalar", faults=CRASH_ONLY,
            controller_factory=static_factory(32, 4, 3.2), trace=True,
        )
        _, rb, sb = run_cluster(
            "batch", faults=CRASH_ONLY,
            controller_factory=static_factory(32, 4, 3.2), trace=True,
        )
        assert_identical(ra, rb)
        assert sa.spans == sb.spans
        assert any(e.kind == "crash" for e in ra.fault_events)

    @pytest.mark.parametrize("seed", [1, 2, 11])
    def test_property_randomized_schedules_with_brownout(self, seed):
        # Property-style sweep: faults layered on autoscaling AND brownout,
        # different workload/fault seeds each time.
        def kwargs():
            return dict(
                faults=MIXED_FAULTS,
                seed=seed,
                fault_seed=seed + 100,
                rate=0.8,
                autoscaler=ReactiveThreshold(
                    sessions_per_server=3, scale_down_cooldown_steps=8
                ),
                brownout=BrownoutController(sessions_per_server=3),
            )

        _, ra, _ = run_cluster("scalar", **kwargs())
        _, rb, _ = run_cluster("batch", **kwargs())
        assert_identical(ra, rb)

    @pytest.mark.parametrize("engine", ["scalar", "batch"])
    def test_noop_fault_config_is_bitwise_none(self, engine):
        # Determinism guard: a config with no fault mode enabled must not
        # perturb anything — not a single RNG draw differs from None.
        _, ra, _ = run_cluster(engine, faults=None)
        _, rb, _ = run_cluster(engine, faults=FaultConfig())
        assert ra == rb

    def test_same_config_reproduces(self):
        _, ra, _ = run_cluster("batch", faults=MIXED_FAULTS)
        _, rb, _ = run_cluster("batch", faults=MIXED_FAULTS)
        assert ra == rb


class TestDomainEquivalence:
    """Scalar/batch equality under correlated zone outages and checkpoints."""

    @pytest.mark.parametrize(
        "config",
        [ZONAL_KILL_A, ZONAL_KILL_B],
        ids=["single-zone-checkpointed", "two-zones-plus-crashes"],
    )
    def test_pinned_kill_schedules(self, config):
        # A declarative zonal kill on a 6-server/3-zone fleet with
        # failure-aware routing: full results, span streams and Q-tables
        # must match bitwise across engines.
        ca, ra, sa = run_cluster(
            "scalar", faults=config, servers=6,
            dispatcher=FailureAware(), trace=True,
        )
        cb, rb, sb = run_cluster(
            "batch", faults=config, servers=6,
            dispatcher=FailureAware(), trace=True,
        )
        assert_identical(ra, rb)
        assert sa.spans == sb.spans
        assert controller_states(ca) == controller_states(cb)
        kinds = {event.kind for event in ra.fault_events}
        assert "zone_outage" in kinds
        assert "crash" in kinds

    def test_randomized_zonal_schedule(self):
        ca, ra, sa = run_cluster(
            "scalar", faults=ZONAL_RANDOM, servers=6,
            dispatcher=FailureAware(), rate=0.7, trace=True,
        )
        cb, rb, sb = run_cluster(
            "batch", faults=ZONAL_RANDOM, servers=6,
            dispatcher=FailureAware(), rate=0.7, trace=True,
        )
        assert_identical(ra, rb)
        assert sa.spans == sb.spans
        assert controller_states(ca) == controller_states(cb)
        assert any(e.kind == "zone_outage" for e in ra.fault_events)

    def test_domain_ledger_is_populated(self):
        _, result, _ = run_cluster(
            "batch", faults=ZONAL_KILL_A, servers=6, dispatcher=FailureAware(),
        )
        summary = result.summary()
        assert summary.failed_domains == sum(
            1 for e in result.fault_events if e.kind == "zone_outage"
        )
        assert summary.failed_domains >= 1
        assert summary.mean_available_domains > 0
        assert any(s.available_domains < 3 for s in result.fleet_trace)
        # Crash events carry the failure domain of the server they hit.
        crashes = [e for e in result.fault_events if e.kind == "crash"]
        assert crashes
        assert all(e.zone is not None and e.rack is not None for e in crashes)
        # Zone-level events name the zone, not a server.
        outages = [e for e in result.fault_events if e.kind == "zone_outage"]
        assert all(e.server == -1 and e.zone == 1 for e in outages)


class TestScheduleIsolation:
    """The fault schedule is a function of the fault seed, nothing else."""

    @staticmethod
    def _zone_schedule(result):
        # (step, zone, drawn downtime) — the victim count in the detail is
        # membership-dependent by design, the drawn schedule is not.
        return [
            (e.step, e.zone, e.detail.rsplit(" down ", 1)[-1])
            for e in result.fault_events
            if e.kind == "zone_outage"
        ]

    def test_telemetry_does_not_perturb_schedule(self):
        _, plain, _ = run_cluster("batch", faults=ZONAL_RANDOM, servers=6)
        _, traced, _ = run_cluster(
            "batch", faults=ZONAL_RANDOM, servers=6, trace=True,
        )
        assert_identical(plain, traced)

    def test_slo_does_not_perturb_schedule(self):
        _, plain, _ = run_cluster("batch", faults=ZONAL_RANDOM, servers=6)
        _, observed, _ = run_cluster(
            "batch", faults=ZONAL_RANDOM, servers=6,
            slo=(QueueWaitObjective(name="wait", window_steps=8),),
        )
        assert_identical(plain, observed)

    def test_autoscale_resize_does_not_perturb_zone_schedule(self):
        # Zone outage draws happen once per zone per step regardless of
        # fleet membership, so commissioning servers mid-run must not move
        # a single outage.  (Per-server *consequences* legitimately differ
        # — the drawn zone schedule must not.)
        _, fixed, _ = run_cluster(
            "batch", faults=ZONAL_RANDOM, servers=6, rate=1.2,
        )
        _, elastic, _ = run_cluster(
            "batch", faults=ZONAL_RANDOM, servers=6, rate=1.2,
            autoscaler=ReactiveThreshold(
                sessions_per_server=3, scale_down_cooldown_steps=8
            ),
            max_servers=10,
        )
        assert any(e.direction == "up" for e in elastic.scaling_events)
        assert self._zone_schedule(fixed) == self._zone_schedule(elastic)


class TestRecoverySemantics:
    def test_migrated_sessions_and_ledger(self):
        _, result, sink = run_cluster("batch", faults=CRASH_ONLY, trace=True)
        assert result.retried > 0
        # Salvaged sessions land under <user>#r<attempt> keys on their
        # replacement server; the crashed server keeps the partial records.
        migrated = [
            key
            for per_server in result.records_by_server
            for key in per_server
            if "#r" in key
        ]
        assert len(migrated) == result.retried
        assert migrated
        # Ledger arithmetic still reconciles.
        assert result.arrivals == (
            result.admitted + result.rejected + result.dropped + result.abandoned
        )
        assert 0 <= result.failed <= result.admitted
        summary = result.summary()
        assert summary.failed == result.failed
        assert summary.retried == result.retried
        assert summary.server_crashes == sum(
            1 for e in result.fault_events if e.kind == "crash"
        )
        assert summary.mean_healthy_servers > 0

    def test_trace_lifecycle_invariant_under_faults(self):
        _, result, sink = run_cluster("batch", faults=MIXED_FAULTS, trace=True)
        spans = [s for s in sink.spans if not s["request"].startswith("server-")]
        arrivals = {s["request"] for s in spans if s["kind"] == "arrival"}
        terminals = {}
        for span in spans:
            if span["kind"] in TERMINAL_KINDS:
                terminals[span["request"]] = terminals.get(span["request"], 0) + 1
        # Exactly one terminal span per arrival, crashes notwithstanding;
        # migrated sessions keep their original user id in the trace.
        assert set(terminals) == arrivals
        assert all(count == 1 for count in terminals.values())
        assert not any("#r" in request for request in terminals)
        failed_spans = [s for s in spans if s["kind"] == "failed"]
        assert len(failed_spans) == result.failed
        retry_dispatches = [
            s for s in spans if s["kind"] == "dispatched" and "retry" in s
        ]
        assert len(retry_dispatches) == result.retried

    def test_zero_retry_budget_sheds_crashed_sessions(self):
        config = FaultConfig(
            crash_mtbf_steps=25.0, crash_mttr_steps=5.0, max_retries=0, seed=9
        )
        _, result, _ = run_cluster("batch", faults=config)
        crashes_with_sessions = sum(
            e.sessions_lost for e in result.fault_events if e.kind == "crash"
        )
        assert crashes_with_sessions > 0
        assert result.retried == 0
        assert result.failed == crashes_with_sessions

    def test_faults_fire_only_in_arrival_window(self):
        duration = 40
        _, result, _ = run_cluster("batch", faults=MIXED_FAULTS, duration=duration)
        assert result.steps > duration  # a drain tail actually ran
        injected = [
            e for e in result.fault_events
            if e.kind in ("crash", "straggler", "warmup_failure")
        ]
        assert injected
        assert all(e.step < duration for e in injected)

    def test_fleet_trace_records_health(self):
        _, result, _ = run_cluster("batch", faults=CRASH_ONLY)
        assert any(s.failed_servers > 0 for s in result.fleet_trace)
        # Capacity comes back: the fleet ends the run with healthy servers.
        assert result.fleet_trace[-1].healthy_servers > 0
        for sample in result.fleet_trace:
            assert sample.healthy_servers <= sample.dispatchable_servers

    def test_warmup_failures_are_retired_not_dispatched(self):
        config = FaultConfig(warmup_failure_rate=1.0, seed=2)
        _, result, _ = run_cluster(
            "batch",
            faults=config,
            rate=1.5,
            autoscaler=ReactiveThreshold(
                sessions_per_server=3, scale_down_cooldown_steps=8
            ),
        )
        failures = [e for e in result.fault_events if e.kind == "warmup_failure"]
        assert failures  # the autoscaler commissioned and every one failed
        # Failed provisions never served: their record maps are empty.
        for event in failures:
            assert result.records_by_server[event.server] == {}


class _TaintedWorkload:
    """Wraps a generator, stamping a colliding user id on every arrival."""

    def __init__(self, inner, user_id):
        self._inner = inner
        self._user_id = user_id
        self._count = 0

    @property
    def consumed(self):
        return self._inner.consumed

    def arrivals(self, step):
        for event in self._inner.arrivals(step):
            user_id = f"{self._user_id}.{self._count}"
            self._count += 1
            request = dataclasses.replace(event.request, user_id=user_id)
            yield dataclasses.replace(event, request=request)


class TestRetryKeyGuard:
    """Raw user ids must not collide with ``<user>#r<attempt>`` retry keys."""

    @staticmethod
    def _cluster(user_id, faults):
        workload = _TaintedWorkload(
            WorkloadGenerator(
                PoissonTraffic(2.0), seed=1, playlist_videos=1, frames_per_video=4
            ),
            user_id,
        )
        return ClusterOrchestrator(
            2,
            workload,
            admission=CapacityThreshold(max_sessions_per_server=3, max_queue=6),
            seed=1,
            faults=faults,
        )

    def test_marker_in_user_id_rejected_at_intake(self):
        # "mallory#r2" would collide with retry attempt 2 of user "mallory"
        # in the per-server record maps — refuse it before it can.
        cluster = self._cluster("mallory#r2", CRASH_ONLY)
        with pytest.raises(ClusterError, match="#r"):
            cluster.run(10)

    def test_marker_allowed_when_faults_disabled(self):
        # Without fault injection no retry keys exist, so nothing collides;
        # the pre-fault behavior (any user id) is preserved.
        cluster = self._cluster("mallory#r2", None)
        result = cluster.run(6)
        assert result.admitted > 0


class TestBrownoutAwareAutoscaling:
    @staticmethod
    def signals(step, provisioned, level, active_per_server=1):
        servers = tuple(
            ServerSnapshot(
                server_index=index,
                active_sessions=active_per_server,
                last_power_w=50.0,
                sessions_dispatched=active_per_server,
            )
            for index in range(provisioned)
        )
        snapshot = ClusterSnapshot(
            step=step,
            servers=servers,
            queue_length=0,
            power_cap_w=100.0 * provisioned,
            brownout_level=level,
        )
        return AutoscaleSignals(
            step=step,
            snapshot=snapshot,
            arrivals=0,
            provisioned_servers=provisioned,
            warming_servers=0,
            draining_servers=0,
            min_servers=1,
            max_servers=16,
            brownout_level=level,
        )

    def test_sustained_level_scales_up_exactly_once(self):
        policy = ReactiveThreshold(
            sessions_per_server=4,
            scale_down_cooldown_steps=5,
            brownout_servers_per_level=2,
        )
        first = policy.decide(self.signals(0, provisioned=4, level=1))
        assert first.target_servers == 6
        # The fleet grows to 6; the level persists: hold, do not flap.
        for step in range(1, 10):
            decision = policy.decide(self.signals(step, provisioned=6, level=1))
            assert decision.target_servers == 6

    def test_level_rise_raises_the_target(self):
        policy = ReactiveThreshold(
            sessions_per_server=4,
            scale_down_cooldown_steps=5,
            brownout_servers_per_level=2,
        )
        assert policy.decide(self.signals(0, 4, level=1)).target_servers == 6
        assert policy.decide(self.signals(1, 6, level=2)).target_servers == 8

    def test_no_scale_down_while_browned_out(self):
        policy = ReactiveThreshold(
            sessions_per_server=4,
            scale_down_cooldown_steps=0,
            brownout_servers_per_level=0,
        )
        # Utilization far below the scale-down threshold, but level > 0.
        decision = policy.decide(
            self.signals(20, provisioned=6, level=1, active_per_server=0)
        )
        assert decision.target_servers == 6

    def test_base_resets_between_episodes(self):
        policy = ReactiveThreshold(
            sessions_per_server=4,
            scale_down_cooldown_steps=0,
            brownout_servers_per_level=1,
        )
        assert policy.decide(self.signals(0, 4, level=1)).target_servers == 5
        # Episode clears; fleet shrinks back over time.
        down = policy.decide(self.signals(10, 5, level=0, active_per_server=0))
        assert down.target_servers == 4
        # Next episode is judged from its own base, not the stale one.
        assert policy.decide(self.signals(20, 4, level=1)).target_servers == 5

    def test_queue_pressure_still_wins(self):
        # A real queue fires the ordinary scale-up branch even during
        # brownout (it sizes the move to the backlog).
        policy = ReactiveThreshold(
            sessions_per_server=4, scale_up_queue=4, brownout_servers_per_level=1
        )
        signals = self.signals(0, 4, level=1)
        snapshot = ClusterSnapshot(
            step=0,
            servers=signals.snapshot.servers,
            queue_length=8,
            power_cap_w=400.0,
            brownout_level=1,
        )
        signals = dataclasses.replace(signals, snapshot=snapshot)
        assert policy.decide(signals).target_servers == 6

    def test_orchestrator_passes_level_through(self):
        # End-to-end: a browned-out overloaded fleet with the brownout-aware
        # policy grows beyond what it had at brownout onset.
        autoscaler = ReactiveThreshold(
            sessions_per_server=3,
            scale_down_cooldown_steps=8,
            brownout_servers_per_level=1,
        )
        _, result, _ = run_cluster(
            "batch",
            faults=None,
            rate=2.5,
            servers=2,
            autoscaler=autoscaler,
            brownout=BrownoutController(sessions_per_server=3),
        )
        assert result.summary().brownout_steps > 0
        assert any(e.direction == "up" for e in result.scaling_events)


class TestSummaryRoundTrip:
    def test_fault_fields_round_trip(self):
        _, result, _ = run_cluster("batch", faults=MIXED_FAULTS)
        summary = result.summary()
        clone = ClusterSummary.from_dict(summary.to_dict())
        assert clone == summary
        assert clone.failed == summary.failed
        assert clone.server_crashes == summary.server_crashes

    def test_pre_fault_payloads_still_load(self):
        # A JSON written before the fault fields existed must load with the
        # new fields at their defaults.
        _, result, _ = run_cluster("batch", faults=None, duration=10)
        payload = result.summary().to_dict()
        for key in (
            "failed", "retried", "server_crashes", "stragglers",
            "warmup_failures", "mean_healthy_servers",
        ):
            payload.pop(key)
        loaded = ClusterSummary.from_dict(payload)
        assert loaded.failed == 0
        assert loaded.retried == 0
        assert loaded.server_crashes == 0
        assert loaded.mean_healthy_servers == 0.0
        assert loaded.arrivals == result.arrivals
