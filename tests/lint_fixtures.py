"""Shared helpers for the lint test suite.

``lint_snippet`` writes a source snippet to a path shaped like a repro
package file (so the module-scoped rules see a dotted module name) and
returns the surviving findings; the tests assert on rule codes.
"""

from __future__ import annotations

import textwrap

from repro.lint import lint_paths

__all__ = ["codes_of", "lint_snippet"]


def lint_snippet(tmp_path, relative_path: str, source: str):
    """Lint one snippet placed at ``tmp_path/<relative_path>``.

    ``relative_path`` controls the derived module name: pass
    ``repro/hevc/mod.py`` to lint as ``repro.hevc.mod``, or a bare
    ``mod.py`` for a module outside the repro package.
    """
    target = tmp_path / relative_path
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    findings, errors = lint_paths([str(target)])
    assert not errors, errors
    return findings


def codes_of(findings) -> list[str]:
    return [finding.code for finding in findings]
