"""End-to-end tests for repro.cluster.cluster.ClusterOrchestrator."""

from __future__ import annotations

import pytest

from repro.errors import ClusterError
from repro.cluster.admission import AlwaysAdmit, CapacityThreshold
from repro.cluster.cluster import ClusterOrchestrator
from repro.cluster.dispatch import DispatchPolicy, PowerAware, RoundRobin
from repro.cluster.workload import PoissonTraffic, WorkloadGenerator
from repro.manager.factories import static_factory


def make_cluster(
    num_servers=2,
    rate=0.5,
    seed=0,
    admission=None,
    dispatcher=None,
    frames_per_video=10,
    **workload_kwargs,
):
    workload = WorkloadGenerator(
        PoissonTraffic(rate),
        seed=seed,
        frames_per_video=frames_per_video,
        **workload_kwargs,
    )
    return ClusterOrchestrator(
        num_servers,
        workload,
        admission=admission,
        dispatcher=dispatcher,
        controller_factory=static_factory(qp=32, threads=4, frequency_ghz=3.2),
        seed=seed,
    )


class TestClusterRun:
    def test_every_admitted_request_lands_on_exactly_one_server(self):
        result = make_cluster(num_servers=3, rate=1.0).run(40)
        placements: dict[str, int] = {}
        for index, records in enumerate(result.records_by_server):
            for session_id in records:
                assert session_id not in placements, "session served by two servers"
                placements[session_id] = index
        assert len(placements) == result.admitted

    def test_admission_ledger_is_complete(self):
        result = make_cluster(num_servers=2, rate=1.5).run(40)
        assert result.arrivals == result.admitted + result.rejected + result.abandoned
        assert result.admitted > 0

    def test_same_seed_identical_summary(self):
        a = make_cluster(seed=11).run(30).summary()
        b = make_cluster(seed=11).run(30).summary()
        assert a == b

    def test_drain_finishes_every_admitted_playlist(self):
        result = make_cluster(rate=1.0, frames_per_video=12).run(25, drain=True)
        for records in result.records_by_server:
            for session_id, session_records in records.items():
                assert len(session_records) == 12, session_id

    def test_no_drain_stops_at_the_arrival_window(self):
        result = make_cluster(rate=1.0).run(25, drain=False)
        assert result.steps == 25
        assert all(len(trace) == 25 for trace in result.samples_by_server)

    def test_max_drain_steps_bounds_the_tail(self):
        result = make_cluster(rate=1.0, frames_per_video=50).run(
            10, drain=True, max_drain_steps=5
        )
        assert result.steps == 15

    def test_every_server_samples_every_step(self):
        result = make_cluster(num_servers=3, rate=0.3).run(20)
        lengths = {len(trace) for trace in result.samples_by_server}
        assert lengths == {result.steps}

    def test_idle_fleet_still_draws_power(self):
        result = make_cluster(rate=0.0).run(15)
        summary = result.summary()
        assert summary.admitted == 0
        assert summary.fleet_mean_power_w > 0
        assert summary.watts_per_session == 0.0
        assert all(server.utilization == 0.0 for server in summary.servers)

    def test_tight_capacity_rejects_overload(self):
        cluster = make_cluster(
            num_servers=1,
            rate=2.0,
            admission=CapacityThreshold(max_sessions_per_server=1, max_queue=1),
            frames_per_video=30,
        )
        summary = cluster.run(40).summary()
        assert summary.rejected > 0
        assert summary.rejection_rate > 0.0

    def test_queue_waits_are_recorded(self):
        cluster = make_cluster(
            num_servers=1,
            rate=1.5,
            admission=CapacityThreshold(max_sessions_per_server=1, max_queue=8),
            frames_per_video=6,
        )
        result = cluster.run(40)
        assert any(wait > 0 for wait in result.queue_waits)
        assert all(wait >= 0 for wait in result.queue_waits)
        assert len(result.queue_waits) == result.admitted

    def test_always_admit_overloads_the_fleet(self):
        cluster = make_cluster(
            num_servers=1, rate=2.0, admission=AlwaysAdmit(), frames_per_video=20
        )
        result = cluster.run(20)
        assert result.rejected == 0
        assert result.admitted == result.arrivals

    def test_round_robin_spreads_evenly(self):
        cluster = make_cluster(
            num_servers=2,
            rate=1.0,
            admission=AlwaysAdmit(),
            dispatcher=RoundRobin(),
        )
        result = cluster.run(30)
        counts = [len(records) for records in result.records_by_server]
        assert abs(counts[0] - counts[1]) <= 1

    def test_power_aware_dispatch_runs(self):
        summary = make_cluster(dispatcher=PowerAware(), rate=1.0).run(20).summary()
        assert summary.admitted > 0

    def test_invalid_dispatch_index_raises(self):
        class Broken(DispatchPolicy):
            def select(self, event, snapshot):
                return 99

        cluster = make_cluster(rate=5.0, dispatcher=Broken())
        with pytest.raises(ClusterError):
            cluster.run(5)

    def test_num_servers_validated(self):
        workload = WorkloadGenerator(PoissonTraffic(1.0))
        with pytest.raises(ClusterError):
            ClusterOrchestrator(0, workload)

    def test_negative_duration_rejected(self):
        with pytest.raises(ClusterError):
            make_cluster().run(-1)

    def test_consumed_workload_rejected(self):
        # Reusing a workload generator would continue its random stream
        # instead of reproducing the trace — refuse it loudly.
        workload = WorkloadGenerator(PoissonTraffic(1.0), seed=0, frames_per_video=6)
        workload.generate(5)
        cluster = ClusterOrchestrator(
            1, workload, controller_factory=static_factory(32, 4, 3.2)
        )
        with pytest.raises(ClusterError):
            cluster.run(5)

    def test_second_run_rejected(self):
        # Per-server orchestrators keep their sessions, so reuse would mix
        # the runs' records; the orchestrator is single-use.
        cluster = make_cluster()
        cluster.run(10)
        with pytest.raises(ClusterError):
            cluster.run(10)


class TestSnapshot:
    def test_snapshot_reflects_fleet_state(self):
        cluster = make_cluster(num_servers=2, rate=1.0)
        before = cluster.snapshot(step=0, queue_length=3)
        assert before.num_servers == 2
        assert before.queue_length == 3
        assert before.total_active_sessions == 0
        assert before.fleet_power_w > 0  # idle draw
        cluster.run(10, drain=False)
        after = cluster.snapshot(step=10, queue_length=0)
        assert sum(s.sessions_dispatched for s in after.servers) > 0
