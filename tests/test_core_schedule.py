"""Unit tests for repro.core.schedule (paper Sec. III-B-d, Fig. 3)."""

from __future__ import annotations

import pytest

from repro.core.schedule import AgentSchedule, AgentSlot
from repro.errors import SchedulingError


@pytest.fixture
def schedule() -> AgentSchedule:
    return AgentSchedule.mamut_default()


class TestAgentSlot:
    def test_acts_at(self):
        slot = AgentSlot("dvfs", period=6, offset=2)
        assert slot.acts_at(2)
        assert slot.acts_at(8)
        assert not slot.acts_at(0)
        assert not slot.acts_at(3)

    def test_validation(self):
        with pytest.raises(SchedulingError):
            AgentSlot("a", period=0)
        with pytest.raises(SchedulingError):
            AgentSlot("a", period=6, offset=6)
        with pytest.raises(SchedulingError):
            AgentSlot("a", period=6, offset=2).acts_at(-1)


class TestMamutDefault:
    def test_paper_periods_and_offsets(self, schedule):
        """AGqp every 24 frames, AGthread every 12 (offset 1), AGdvfs every 6 (offset 2)."""
        by_name = {slot.name: slot for slot in schedule.slots}
        assert (by_name["qp"].period, by_name["qp"].offset) == (24, 0)
        assert (by_name["threads"].period, by_name["threads"].offset) == (12, 1)
        assert (by_name["dvfs"].period, by_name["dvfs"].offset) == (6, 2)

    def test_agent_at_over_one_hyper_period(self, schedule):
        activations = {
            frame: schedule.agent_at(frame)
            for frame in range(schedule.hyper_period)
            if schedule.agent_at(frame) is not None
        }
        assert activations == {
            0: "qp",
            1: "threads",
            2: "dvfs",
            8: "dvfs",
            13: "threads",
            14: "dvfs",
            20: "dvfs",
        }

    def test_null_frames_exist(self, schedule):
        assert schedule.agent_at(3) is None
        assert schedule.agent_at(10) is None

    def test_dvfs_acts_most_frequently(self, schedule):
        counts = {"qp": 0, "threads": 0, "dvfs": 0}
        for frame in range(240):
            agent = schedule.agent_at(frame)
            if agent:
                counts[agent] += 1
        assert counts["dvfs"] > counts["threads"] > counts["qp"]
        assert counts == {"qp": 10, "threads": 20, "dvfs": 40}


class TestChains:
    def test_chain_after_qp_is_threads_then_dvfs(self, schedule):
        assert schedule.chain_after(0) == ["threads", "dvfs"]

    def test_chain_after_threads_is_dvfs(self, schedule):
        assert schedule.chain_after(1) == ["dvfs"]
        assert schedule.chain_after(13) == ["dvfs"]

    def test_chain_after_dvfs_depends_on_its_position(self, schedule):
        # Right after frames 2 and 14 the next actor is AGdvfs itself (NULL
        # chain); after frame 8 the next distinct actor is AGthread.
        assert schedule.chain_after(2) == []
        assert schedule.chain_after(14) == []
        assert schedule.chain_after(8) == ["threads"]

    def test_chain_at_null_frame_raises(self, schedule):
        with pytest.raises(SchedulingError):
            schedule.chain_after(3)

    def test_next_activation(self, schedule):
        assert schedule.next_activation(0) == ("threads", 1)
        assert schedule.next_activation(2) == ("dvfs", 8)
        assert schedule.next_activation(20) == ("qp", 24)

    def test_activations_in_range(self, schedule):
        activations = schedule.activations_in(0, 24)
        assert activations == [
            (0, "qp"),
            (1, "threads"),
            (2, "dvfs"),
            (8, "dvfs"),
            (13, "threads"),
            (14, "dvfs"),
            (20, "dvfs"),
        ]
        with pytest.raises(SchedulingError):
            schedule.activations_in(10, 5)


class TestValidation:
    def test_overlapping_slots_rejected(self):
        with pytest.raises(SchedulingError):
            AgentSchedule([AgentSlot("a", 6, 0), AgentSlot("b", 12, 0)])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchedulingError):
            AgentSchedule([AgentSlot("a", 6, 0), AgentSlot("a", 12, 1)])

    def test_empty_schedule_rejected(self):
        with pytest.raises(SchedulingError):
            AgentSchedule([])

    def test_custom_non_overlapping_schedule(self):
        schedule = AgentSchedule([AgentSlot("x", 4, 0), AgentSlot("y", 4, 2)])
        assert schedule.hyper_period == 4
        assert schedule.agent_at(0) == "x"
        assert schedule.agent_at(2) == "y"
        assert schedule.chain_after(0) == ["y"]
