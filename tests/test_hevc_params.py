"""Unit tests for repro.hevc.params."""

from __future__ import annotations

import pytest

from repro.constants import QP_VALUES
from repro.errors import EncodingError
from repro.hevc.params import EncoderConfig, Preset


class TestPreset:
    def test_effort_increases_from_ultrafast_to_slow(self):
        ordered = [
            Preset.ULTRAFAST,
            Preset.SUPERFAST,
            Preset.VERYFAST,
            Preset.FASTER,
            Preset.FAST,
            Preset.MEDIUM,
            Preset.SLOW,
        ]
        efforts = [p.effort_factor for p in ordered]
        assert efforts == sorted(efforts)
        assert efforts[0] == pytest.approx(1.0)

    def test_quality_gain_increases_with_effort(self):
        assert Preset.SLOW.quality_gain_db > Preset.ULTRAFAST.quality_gain_db
        assert Preset.ULTRAFAST.quality_gain_db == pytest.approx(0.0)

    def test_compression_gain_improves_with_effort(self):
        assert Preset.SLOW.compression_gain < Preset.ULTRAFAST.compression_gain
        assert Preset.ULTRAFAST.compression_gain == pytest.approx(1.0)


class TestEncoderConfig:
    def test_valid_construction(self):
        config = EncoderConfig(qp=32, threads=4)
        assert config.qp == 32
        assert config.threads == 4
        assert config.preset is Preset.ULTRAFAST
        assert config.wpp is True

    def test_agent_qp_detection(self):
        assert EncoderConfig(qp=QP_VALUES[0], threads=1).is_agent_qp
        assert not EncoderConfig(qp=23, threads=1).is_agent_qp

    def test_replace(self):
        config = EncoderConfig(qp=32, threads=4)
        changed = config.replace(qp=37, threads=8)
        assert (changed.qp, changed.threads) == (37, 8)
        assert (config.qp, config.threads) == (32, 4)

    def test_rejects_out_of_range_qp(self):
        with pytest.raises(EncodingError):
            EncoderConfig(qp=-1, threads=1)
        with pytest.raises(EncodingError):
            EncoderConfig(qp=52, threads=1)

    def test_rejects_non_positive_threads(self):
        with pytest.raises(EncodingError):
            EncoderConfig(qp=32, threads=0)

    def test_is_frozen(self):
        config = EncoderConfig(qp=32, threads=4)
        with pytest.raises(Exception):
            config.qp = 22  # type: ignore[misc]
