"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that ``python setup.py develop`` keeps working on offline environments
where the ``wheel`` package (required for PEP 660 editable installs) is not
available.
"""

from setuptools import setup

setup()
