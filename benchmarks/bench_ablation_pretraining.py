"""Ablation: cold-start MAMUT vs. pre-trained MAMUT.

The paper reports results averaged over five repetitions of each experiment,
i.e. largely learned behaviour.  This ablation quantifies how much of the
reproduction's remaining QoS gap is simply training time: it compares a
cold-started MAMUT against one whose agents are seeded with Q-tables
pre-trained on catalog content of the same resolution classes
(`repro.manager.pretrain`).
"""

from __future__ import annotations

import logging

from repro.manager.factories import mamut_factory
from repro.manager.pretrain import pretrain_mamut, pretrained_mamut_factory
from repro.manager.runner import ExperimentRunner
from repro.manager.scenario import scenario_one
from repro.metrics.report import format_table
from repro.video.sequence import ResolutionClass


_LOG = logging.getLogger("repro.benchmarks.ablation_pretraining")


def _run_comparison():
    knowledge = {
        ResolutionClass.HR: pretrain_mamut(ResolutionClass.HR, frames=1500, seed=0),
        ResolutionClass.LR: pretrain_mamut(ResolutionClass.LR, frames=1500, seed=0),
    }
    specs = scenario_one(1, 1, num_frames=240, seed=4)
    runner = ExperimentRunner(seed=4)
    return runner.compare(
        {
            "MAMUT (cold start)": mamut_factory(),
            "MAMUT (pre-trained)": pretrained_mamut_factory(knowledge),
        },
        specs,
        repetitions=2,
    )


def test_ablation_pretraining(run_once):
    results = run_once(_run_comparison)

    rows = [
        [label, r.qos_violation_pct, r.mean_power_w, r.mean_fps]
        for label, r in results.items()
    ]
    _LOG.info("\nAblation — cold start vs. pre-trained MAMUT (1HR + 1LR, Scenario I)")
    _LOG.info(format_table(["controller", "Δ (%)", "Power (W)", "FPS"], rows))

    cold = results["MAMUT (cold start)"]
    warm = results["MAMUT (pre-trained)"]
    # Pre-training must not hurt QoS; it typically improves it substantially.
    assert warm.qos_violation_pct <= cold.qos_violation_pct + 5.0
