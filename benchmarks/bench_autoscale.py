"""Elastic vs. fixed fleets on diurnal and flash-crowd traffic.

Not a paper figure — this is the capacity-planning experiment the
autoscaling subsystem exists for.  Each scenario is served from identical
seeds by four fleets:

* ``fixed-mean`` — a static fleet sized for the mean arrival rate (what a
  cost-minimising planner would buy);
* ``fixed-peak`` — a static fleet sized for the peak rate (what an
  availability-minimising planner would buy);
* ``reactive`` — :class:`~repro.cluster.autoscale.ReactiveThreshold`
  growing/shrinking between the two from queue + utilization signals;
* ``predictive`` — :class:`~repro.cluster.autoscale.PredictiveScaling`
  provisioning for an EWMA forecast of the arrival rate.

The headline claim (pinned by ``tests/test_cluster_autoscale.py``): on the
flash-crowd scenario the reactive fleet serves the burst with strictly
fewer abandoned requests than ``fixed-mean`` *and* a lower time-weighted
fleet size than ``fixed-peak``.

Results are written to ``BENCH_autoscale.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_autoscale.py          # full
    PYTHONPATH=src python benchmarks/bench_autoscale.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import logging
import math
import platform
from pathlib import Path

from repro.cluster import (
    CapacityThreshold,
    ClusterOrchestrator,
    DiurnalTraffic,
    FlashCrowdTraffic,
    PredictiveScaling,
    ReactiveThreshold,
    WorkloadGenerator,
)
from repro.manager.factories import static_factory
from repro.metrics.report import format_table
from repro.telemetry import LOG_LEVELS, configure_logging, stamp_provenance

_LOG = logging.getLogger("repro.benchmarks.autoscale")

SESSIONS_PER_SERVER = 4
MAX_QUEUE = 24
SEED = 0


def _servers_for_rate(rate: float, frames_per_video: int) -> int:
    """Little's law: servers needed to hold ``rate`` arrivals per step."""
    return max(1, math.ceil(rate * frames_per_video / SESSIONS_PER_SERVER))


def _scenarios(smoke: bool) -> dict[str, dict]:
    if smoke:
        return {
            "flash": {
                "traffic": lambda: FlashCrowdTraffic(
                    0.3, peak_multiplier=4.0, start=20, duration=15
                ),
                "duration": 50,
                "frames_per_video": 12,
                "base_rate": 0.3,
                "peak_rate": 1.2,
            },
        }
    return {
        "flash": {
            "traffic": lambda: FlashCrowdTraffic(
                0.4, peak_multiplier=5.0, start=130, duration=50
            ),
            "duration": 200,
            "frames_per_video": 32,
            "base_rate": 0.4,
            "peak_rate": 2.0,
        },
        "diurnal": {
            "traffic": lambda: DiurnalTraffic(
                0.8, amplitude=0.9, period=100
            ),
            "duration": 200,
            "frames_per_video": 32,
            "base_rate": 0.8,
            "peak_rate": 0.8 * 1.9,
        },
    }


def _run_fleet(scenario: dict, servers: int, max_servers: int, autoscaler) -> dict:
    workload = WorkloadGenerator(
        scenario["traffic"](),
        seed=SEED,
        frames_per_video=scenario["frames_per_video"],
    )
    cluster = ClusterOrchestrator(
        servers,
        workload,
        admission=CapacityThreshold(
            max_sessions_per_server=SESSIONS_PER_SERVER, max_queue=MAX_QUEUE
        ),
        controller_factory=static_factory(qp=32, threads=4, frequency_ghz=3.2),
        seed=SEED,
        autoscaler=autoscaler,
        min_servers=1,
        max_servers=max_servers,
        provision_warmup_steps=3,
    )
    return cluster.run(scenario["duration"]).summary().to_dict()


def run_benchmark(smoke: bool) -> dict:
    scenarios = _scenarios(smoke)
    payload: dict = {
        "benchmark": "autoscale",
        "sessions_per_server": SESSIONS_PER_SERVER,
        "seed": SEED,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scenarios": {},
    }
    for name, scenario in scenarios.items():
        frames = scenario["frames_per_video"]
        mean_servers = _servers_for_rate(scenario["base_rate"], frames)
        peak_servers = _servers_for_rate(scenario["peak_rate"], frames)
        fleets = {
            "fixed-mean": (mean_servers, mean_servers, None),
            "fixed-peak": (peak_servers, peak_servers, None),
            "reactive": (
                mean_servers,
                peak_servers,
                ReactiveThreshold(sessions_per_server=SESSIONS_PER_SERVER),
            ),
            "predictive": (
                mean_servers,
                peak_servers,
                PredictiveScaling(
                    sessions_per_server=SESSIONS_PER_SERVER,
                    service_steps=frames,
                ),
            ),
        }
        results = {
            label: _run_fleet(scenario, servers, max_servers, autoscaler)
            for label, (servers, max_servers, autoscaler) in fleets.items()
        }
        payload["scenarios"][name] = {
            "mean_servers": mean_servers,
            "peak_servers": peak_servers,
            "duration": scenario["duration"],
            "fleets": results,
        }

        _LOG.info(f"\n=== {name} (mean fleet {mean_servers}, peak fleet {peak_servers}) ===")
        _LOG.info(
            format_table(
                [
                    "fleet",
                    "abandoned",
                    "rejected",
                    "mean size",
                    "peak",
                    "energy (kJ)",
                    "Δ (%)",
                ],
                [
                    [
                        label,
                        r["abandoned"],
                        r["rejected"],
                        r["mean_fleet_size"],
                        r["peak_fleet_size"],
                        r["fleet_energy_j"] / 1000.0,
                        r["qos_violation_pct"],
                    ]
                    for label, r in results.items()
                ],
                float_format="{:.2f}",
            )
        )
    return stamp_provenance(
        payload,
        kind="autoscale",
        seed=SEED,
        config={
            "sessions_per_server": SESSIONS_PER_SERVER,
            "smoke": smoke,
            "scenarios": {
                name: {
                    key: value
                    for key, value in scenario.items()
                    if isinstance(value, (int, float, str, bool))
                }
                for name, scenario in scenarios.items()
            },
        },
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one tiny scenario: a fast CI canary for the autoscaling path",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_autoscale.json",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="info",
        help="verbosity of the repro logger",
    )
    args = parser.parse_args()
    configure_logging(args.log_level)

    payload = run_benchmark(args.smoke)

    flash = payload["scenarios"]["flash"]["fleets"]
    if args.smoke:
        # Rot canary: the elastic fleet actually scaled and outserved the
        # mean-sized fixed fleet on the burst.
        assert flash["reactive"]["scale_up_events"] > 0
        assert (
            flash["reactive"]["abandoned"] + flash["reactive"]["rejected"]
            <= flash["fixed-mean"]["abandoned"] + flash["fixed-mean"]["rejected"]
        )
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        _LOG.info(f"\nsmoke ok, wrote {args.output}")
        return

    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    _LOG.info(f"\nwrote {args.output}")

    # The acceptance claim (also pinned by tests/test_cluster_autoscale.py).
    assert flash["reactive"]["abandoned"] < flash["fixed-mean"]["abandoned"], (
        "reactive autoscaling should abandon strictly fewer requests than "
        "the mean-sized fixed fleet on the flash crowd"
    )
    assert (
        flash["reactive"]["mean_fleet_size"]
        < flash["fixed-peak"]["mean_fleet_size"]
    ), (
        "reactive autoscaling should hold a lower time-weighted fleet size "
        "than the peak-sized fixed fleet"
    )
    _LOG.info("flash-crowd acceptance claims hold")


if __name__ == "__main__":
    main()
