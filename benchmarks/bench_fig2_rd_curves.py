"""Figure 2: RD curves and power/FPS characterisation of the HEVC encoder.

Paper reference: Fig. 2 — PSNR vs. output bandwidth and power vs. FPS for a
1080p video encoded with Kvazaar's ultrafast preset at 3.2 GHz, sweeping the
number of WPP threads (1, 2, 4, 6, 8, 10) and QP (22, 27, 32, 37).
"""

from __future__ import annotations

import logging

from repro.analysis.figures import fig2_characterization
from repro.metrics.report import format_table


_LOG = logging.getLogger("repro.benchmarks.fig2_rd_curves")


def test_fig2_rd_curves(run_once):
    points = run_once(
        fig2_characterization,
        thread_counts=(1, 2, 4, 6, 8, 10),
        qp_values=(22, 27, 32, 37),
        frequency_ghz=3.2,
        num_frames=24,
    )

    rows = [
        [p.threads, p.qp, p.fps, p.power_w, p.psnr_db, p.bandwidth_mbytes_per_s]
        for p in points
    ]
    _LOG.info("\nFigure 2 — threads x QP characterisation (1080p, ultrafast, 3.2 GHz)")
    _LOG.info(
        format_table(
            ["threads", "QP", "FPS", "Power (W)", "PSNR (dB)", "BW (MB/s)"],
            rows,
            float_format="{:.2f}",
        )
    )

    by_config = {(p.threads, p.qp): p for p in points}
    # Shape checks mirroring the figure: FPS grows with threads and QP,
    # PSNR/bandwidth fall with QP, power grows with threads.
    assert by_config[(10, 37)].fps > by_config[(1, 37)].fps
    assert by_config[(10, 37)].fps > by_config[(10, 22)].fps
    assert by_config[(1, 22)].psnr_db > by_config[(1, 37)].psnr_db
    assert by_config[(1, 22)].bandwidth_mbytes_per_s > by_config[(1, 37)].bandwidth_mbytes_per_s
    assert by_config[(10, 22)].power_w > by_config[(1, 22)].power_w
