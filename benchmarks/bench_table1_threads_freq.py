"""Table I: average number of threads and frequency per controller.

Paper reference: Table I — average threads and frequency used for HR and LR
videos by the multi-agent (MAMUT), mono-agent and heuristic controllers.  The
expected shape: the heuristic pins the frequency near the maximum and uses
fewer threads, while the learning controllers use more threads at lower
frequency.
"""

from __future__ import annotations

import logging

from repro.analysis.tables import table1_threads_frequency
from repro.metrics.report import format_table


_LOG = logging.getLogger("repro.benchmarks.table1_threads_freq")


def test_table1_threads_frequency(run_once):
    rows = run_once(
        table1_threads_frequency,
        num_hr=2,
        num_lr=2,
        num_frames=360,
        repetitions=2,
        warmup_videos=2,
    )

    table = [[r.controller, r.resolution_class, r.mean_threads, r.mean_frequency_ghz] for r in rows]
    _LOG.info("\nTable I — average threads and frequency (2HR + 2LR, Scenario I)")
    _LOG.info(format_table(["controller", "class", "Nth", "Freq (GHz)"], table, "{:.2f}"))

    by_key = {(r.controller, r.resolution_class): r for r in rows}
    assert set(by_key) == {
        (c, rc) for c in ("Heuristic", "MonoAgent", "MAMUT") for rc in ("HR", "LR")
    }
    # HR videos need more threads than LR videos for every controller.
    for controller in ("Heuristic", "MonoAgent", "MAMUT"):
        assert by_key[(controller, "HR")].mean_threads > by_key[(controller, "LR")].mean_threads
    # The heuristic runs at least as high a frequency as MAMUT (Table I shape).
    assert (
        by_key[("Heuristic", "HR")].mean_frequency_ghz
        >= by_key[("MAMUT", "HR")].mean_frequency_ghz - 0.05
    )
