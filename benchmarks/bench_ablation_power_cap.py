"""Ablation: sensitivity to the server power cap.

The power cap only enters MAMUT through the binary power state and the -4
constraint penalty.  This ablation sweeps the cap and checks that a tighter
cap pulls the average package power down (at some QoS cost), while a loose cap
leaves the controller free to spend power on throughput.
"""

from __future__ import annotations

import logging

from repro.manager.factories import mamut_factory
from repro.manager.runner import ExperimentRunner
from repro.manager.scenario import scenario_one
from repro.metrics.report import format_table


_LOG = logging.getLogger("repro.benchmarks.ablation_power_cap")

POWER_CAPS_W = (95.0, 110.0, 130.0)


def _run_sweep():
    results = {}
    for cap in POWER_CAPS_W:
        specs = scenario_one(2, 2, num_frames=180, seed=0)
        runner = ExperimentRunner(power_cap_w=cap, seed=0)
        results[cap] = runner.run(
            f"cap={cap:.0f}W",
            mamut_factory(power_cap_w=cap),
            specs,
            repetitions=1,
            warmup_videos=1,
        )
    return results


def test_ablation_power_cap(run_once):
    results = run_once(_run_sweep)

    rows = [
        [f"{cap:.0f}", r.mean_power_w, r.qos_violation_pct, r.mean_frequency_ghz]
        for cap, r in results.items()
    ]
    _LOG.info("\nAblation — power-cap sweep (2HR + 2LR, MAMUT)")
    _LOG.info(format_table(["cap (W)", "Power (W)", "Δ (%)", "Freq (GHz)"], rows))

    assert len(results) == len(POWER_CAPS_W)
    tight = results[POWER_CAPS_W[0]]
    loose = results[POWER_CAPS_W[-1]]
    # A tighter cap must not increase the average power draw.
    assert tight.mean_power_w <= loose.mean_power_w + 3.0
