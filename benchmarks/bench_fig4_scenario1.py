"""Figure 4: ΔQoS and power for Scenario I workloads.

Paper reference: Fig. 4 — percentage of frames under the 24-FPS QoS threshold
and package power for the heuristic, mono-agent and MAMUT controllers when
serving 1..5 simultaneous HR videos and 1..8 simultaneous LR videos.

The sweep here uses shorter videos than the paper (and one warm-up video per
session) to keep the regeneration time reasonable; pass larger values through
``fig4_scenario_one_sweep`` for a closer match.
"""

from __future__ import annotations

import logging

from collections import defaultdict

from repro.analysis.tables import fig4_scenario_one_sweep
from repro.metrics.report import format_table


_LOG = logging.getLogger("repro.benchmarks.fig4_scenario1")


def test_fig4_scenario1(run_once):
    rows = run_once(
        fig4_scenario_one_sweep,
        hr_counts=(1, 2, 3, 4, 5),
        lr_counts=(1, 2, 3, 4, 5, 6, 7, 8),
        num_frames=180,
        repetitions=1,
        warmup_videos=2,
    )

    table = [
        [r.workload, r.controller, r.qos_violation_pct, r.power_w] for r in rows
    ]
    _LOG.info("\nFigure 4 — Scenario I: QoS violations (Δ, %) and power (W)")
    _LOG.info(format_table(["workload", "controller", "Δ (%)", "Power (W)"], table))

    assert rows, "the sweep must produce at least one row"
    assert all(0.0 <= r.qos_violation_pct <= 100.0 for r in rows)
    assert all(r.power_w > 40.0 for r in rows)

    # Shape check: averaged over the single-resolution workloads, the
    # heuristic burns more power than MAMUT (the paper reports 10-24% savings).
    power = defaultdict(list)
    for r in rows:
        power[r.controller].append(r.power_w)
    mean_power = {c: sum(v) / len(v) for c, v in power.items()}
    assert mean_power["MAMUT"] < mean_power["Heuristic"]
