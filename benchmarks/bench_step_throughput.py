"""Steps/sec of the scalar vs. batch stepping engine across fleet sizes.

Not a paper figure — this is the performance trajectory of the cluster
stepping hot path.  For each fleet size the fleet is saturated with two
sessions per server (a step-0 burst admitted by ``AlwaysAdmit`` and spread
by ``RoundRobin``), and the pure stepping loop is then timed through the
public engine APIs (``Orchestrator.run_step``/``idle_step`` for the scalar
engine, :class:`~repro.cluster.batch.BatchStepper` for the batch engine).
Workload/video generation and engine warm-up are excluded, so the numbers
isolate exactly the code the vectorization PR moved onto NumPy.

Results are written to ``BENCH_throughput.json`` at the repository root so
future PRs can regress against them.  Rows are recorded per controller and
*merged* into the JSON — running ``--controller mamut`` updates the MAMUT
rows while keeping the static ones::

    PYTHONPATH=src python benchmarks/bench_step_throughput.py                     # static rows
    PYTHONPATH=src python benchmarks/bench_step_throughput.py --controller mamut  # learning rows
    PYTHONPATH=src python benchmarks/bench_step_throughput.py --smoke             # CI

The full run asserts the batch engine's speedup floor at 64+ servers (>= 5x
for static controllers, >= 3x for MAMUT learning controllers, whose
per-session RNG draws and Q updates are irreducibly scalar); the smoke run
only checks that both engines step a tiny fleet and agree on the session
count (a rot canary for the batch path, cheap enough for CI).  Both modes
also guard the telemetry contract: a disabled profiler hook on the hot path
must stay within :data:`OVERHEAD_BOUND_US` per call.  ``--profile`` runs an
instrumented pass per engine and reports where the step time goes
(gather/evaluate/scatter/mamut for batch; decide/allocate/execute for
scalar).
"""

from __future__ import annotations

import argparse
import json
import logging
import platform
import time
from pathlib import Path

from repro.cluster import (
    AlwaysAdmit,
    BatchStepper,
    ClusterOrchestrator,
    RoundRobin,
    WorkloadGenerator,
)
from repro.cluster.workload import TrafficModel
from repro.manager.factories import mamut_factory, static_factory
from repro.telemetry import (
    LOG_LEVELS,
    NULL_PROFILER,
    StepProfiler,
    configure_logging,
    stamp_provenance,
)

_LOG = logging.getLogger("repro.benchmarks.step_throughput")

FULL_FLEETS = (1, 8, 64, 256)
SMOKE_FLEETS = (1, 4)
SESSIONS_PER_SERVER = 2
SPEEDUP_FLOORS = {"static": 5.0, "mamut": 3.0}
SPEEDUP_FLOOR_FROM_SERVERS = 64

#: Ceiling on the cost of one *disabled* profiler hook (the null context
#: manager every engine phase enters even with telemetry off).  Generous —
#: the observed cost is well under a microsecond — but low enough to catch
#: an accidental always-on timer or allocation sneaking onto the hot path.
OVERHEAD_BOUND_US = 5.0


class Burst(TrafficModel):
    """All arrivals in step 0 — saturates the fleet, then steady stepping."""

    def __init__(self, size: int) -> None:
        self.size = size

    def rate(self, step: int) -> float:
        return float(self.size) if step == 0 else 0.0


def _build_cluster(
    servers: int, steps: int, controller: str, engine: str
) -> ClusterOrchestrator:
    factory = (
        static_factory(qp=32, threads=4, frequency_ghz=3.2)
        if controller == "static"
        else mamut_factory()
    )
    workload = WorkloadGenerator(
        Burst(servers * SESSIONS_PER_SERVER),
        seed=0,
        frames_per_video=steps + 8,
    )
    return ClusterOrchestrator(
        servers,
        workload,
        admission=AlwaysAdmit(),
        dispatcher=RoundRobin(),
        controller_factory=factory,
        seed=0,
        engine=engine,
    )


def _measure(servers: int, steps: int, controller: str, engine: str) -> dict:
    """Time ``steps`` stepping iterations on a saturated fleet."""
    cluster = _build_cluster(servers, steps, controller, engine)
    # Admit the burst and absorb video generation outside the timed region.
    cluster.run(1, drain=False)
    sessions = sum(
        len(orch.active_sessions()) for orch in cluster.orchestrators
    )

    if engine == "batch":
        stepper = BatchStepper(cluster.orchestrators)
        stepper.step(1)  # warm-up: roster gather + first fused evaluation
        start = time.perf_counter()
        for step in range(2, steps + 2):
            stepper.step(step)
        elapsed = time.perf_counter() - start
    else:
        orchestrators = cluster.orchestrators
        for orch in orchestrators:  # warm-up step, symmetric with batch
            if orch.run_step(1) is None:
                orch.idle_step(1)
        start = time.perf_counter()
        for step in range(2, steps + 2):
            for orch in orchestrators:
                if orch.run_step(step) is None:
                    orch.idle_step(step)
        elapsed = time.perf_counter() - start

    frames = sessions * steps
    return {
        "servers": servers,
        "engine": engine,
        "controller": controller,
        "sessions": sessions,
        "steps": steps,
        "elapsed_s": elapsed,
        "steps_per_s": steps / elapsed,
        "frames_per_s": frames / elapsed if elapsed > 0 else 0.0,
    }


def _profile(servers: int, steps: int, controller: str, engine: str) -> dict:
    """Run one instrumented pass and return the per-phase attribution."""
    cluster = _build_cluster(servers, steps, controller, engine)
    cluster.run(1, drain=False)
    profiler = StepProfiler()
    if engine == "batch":
        stepper = BatchStepper(cluster.orchestrators, profiler=profiler)
        for step in range(1, steps + 1):
            stepper.step(step)
            profiler.count_step()
    else:
        for orch in cluster.orchestrators:
            orch.profiler = profiler
        for step in range(1, steps + 1):
            for orch in cluster.orchestrators:
                if orch.run_step(step) is None:
                    orch.idle_step(step)
            profiler.count_step()
    return profiler.report()


def profile_engines(servers: int, steps: int, controller: str) -> dict:
    """Report where the step time goes, per engine (``--profile``)."""
    reports = {}
    for engine in ("scalar", "batch"):
        report = _profile(servers, steps, controller, engine)
        reports[engine] = report
        _LOG.info(
            "profile %s: servers=%d steps=%d %.1f steps/s",
            engine,
            servers,
            report["steps"],
            report["steps_per_s"],
        )
        for phase in report["phases"]:
            _LOG.info(
                "  %-10s %8.2f ms  %6d calls  %5.1f%%",
                phase["name"],
                phase["total_s"] * 1e3,
                phase["calls"],
                phase["share"] * 100.0,
            )
    return reports


def check_disabled_overhead(calls: int = 100_000) -> float:
    """Assert a disabled profiler hook costs < OVERHEAD_BOUND_US per call.

    This is the "zero overhead when disabled" guard: every engine phase
    enters this null context manager even with telemetry off, so its cost
    bounds what the telemetry subsystem adds to an uninstrumented run.
    """
    phase = NULL_PROFILER.phase
    start = time.perf_counter()
    for _ in range(calls):
        with phase("evaluate"):
            pass
    per_call_us = (time.perf_counter() - start) / calls * 1e6
    assert per_call_us < OVERHEAD_BOUND_US, (
        f"disabled telemetry hook costs {per_call_us:.2f}us per call "
        f"(bound {OVERHEAD_BOUND_US}us) — the null profiler is no longer free"
    )
    _LOG.info(
        "disabled-telemetry hook: %.3fus per call (bound %.1fus) ok",
        per_call_us,
        OVERHEAD_BOUND_US,
    )
    return per_call_us


def run_benchmark(
    fleets: tuple[int, ...], steps: int, controller: str
) -> dict:
    results = []
    speedups = {}
    for servers in fleets:
        scalar = _measure(servers, steps, controller, "scalar")
        batch = _measure(servers, steps, controller, "batch")
        results.extend([scalar, batch])
        speedup = batch["steps_per_s"] / scalar["steps_per_s"]
        speedups[str(servers)] = speedup
        _LOG.info(
            "servers=%4d sessions=%4d scalar=%9.1f steps/s "
            "batch=%9.1f steps/s speedup=%5.2fx",
            servers,
            batch["sessions"],
            scalar["steps_per_s"],
            batch["steps_per_s"],
            speedup,
        )
    return {
        "benchmark": "step_throughput",
        "controller": controller,
        "sessions_per_server": SESSIONS_PER_SERVER,
        "steps_timed": steps,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
        "speedup_batch_over_scalar": speedups,
    }


def merge_into_output(payload: dict, output: Path) -> dict:
    """Merge one controller's rows into the (multi-controller) results file.

    The file keeps one ``results`` list covering every controller plus a
    per-controller ``speedup_batch_over_scalar`` mapping; rows of the
    controller just measured replace their previous incarnation, other
    controllers' rows are preserved.  A legacy single-controller file (the
    pre-mamut format, whose speedups sit directly at the top level) is
    upgraded on the fly.
    """
    controller = payload["controller"]
    merged = {
        "benchmark": payload["benchmark"],
        "sessions_per_server": payload["sessions_per_server"],
        "steps_timed": payload["steps_timed"],
        "python": payload["python"],
        "machine": payload["machine"],
        "results": [],
        "speedup_batch_over_scalar": {},
    }
    if output.exists():
        try:
            existing = json.loads(output.read_text())
        except json.JSONDecodeError:
            existing = {}
        old_speedups = existing.get("speedup_batch_over_scalar", {})
        if old_speedups and not all(
            isinstance(v, dict) for v in old_speedups.values()
        ):
            # Legacy layout: one controller at the top level.
            old_speedups = {existing.get("controller", "static"): old_speedups}
        merged["speedup_batch_over_scalar"].update(old_speedups)
        # Legacy rows predate the per-row controller tag; stamp them with
        # the file's top-level controller so re-runs replace them instead of
        # duplicating them.
        legacy_controller = existing.get("controller", "static")
        old_rows = [
            {**row, "controller": row.get("controller", legacy_controller)}
            for row in existing.get("results", [])
        ]
        merged["results"] = [
            row for row in old_rows if row["controller"] != controller
        ]
    merged["results"].extend(payload["results"])
    merged["speedup_batch_over_scalar"][controller] = payload[
        "speedup_batch_over_scalar"
    ]
    # Controller is deliberately NOT part of the fingerprint: the merged
    # file accumulates every controller's rows, and wall-clock throughput
    # comparisons need a tolerance anyway — config pins only what shapes
    # the measured work.
    stamp_provenance(
        merged,
        kind="step_throughput",
        seed=0,
        config={
            "sessions_per_server": payload["sessions_per_server"],
            "steps_timed": payload["steps_timed"],
        },
    )
    output.write_text(json.dumps(merged, indent=2) + "\n")
    return merged


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny fleets and few steps: a fast CI canary for the batch path",
    )
    parser.add_argument(
        "--controller",
        choices=("static", "mamut"),
        default="static",
        help="per-session controller (static isolates the stepping engine)",
    )
    parser.add_argument(
        "--steps", type=int, default=None, help="stepping iterations to time"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_throughput.json",
        help="where to write the JSON results (skipped in smoke mode)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="also run an instrumented pass per engine and report per-phase "
        "wall time (gather/evaluate/scatter/mamut vs. decide/allocate/execute)",
    )
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="info",
        help="verbosity of the repro logger",
    )
    args = parser.parse_args()
    configure_logging(args.log_level)

    fleets = SMOKE_FLEETS if args.smoke else FULL_FLEETS
    steps = args.steps if args.steps is not None else (6 if args.smoke else 60)

    # Telemetry contract: the disabled hooks the timed loops just ran
    # through must be effectively free.
    check_disabled_overhead()

    payload = run_benchmark(fleets, steps, args.controller)

    if args.profile:
        profile_engines(max(fleets), steps, args.controller)

    if args.smoke:
        # Rot canary: both engines stepped a saturated fleet.
        counts = {
            (r["servers"], r["engine"]): r["sessions"]
            for r in payload["results"]
        }
        for servers in fleets:
            assert counts[(servers, "scalar")] == counts[(servers, "batch")] > 0
        _LOG.info("smoke ok")
        return

    merge_into_output(payload, args.output)
    _LOG.info("merged %s rows into %s", args.controller, args.output)

    floor = SPEEDUP_FLOORS[args.controller]
    floor_fleets = [s for s in fleets if s >= SPEEDUP_FLOOR_FROM_SERVERS]
    for servers in floor_fleets:
        speedup = payload["speedup_batch_over_scalar"][str(servers)]
        assert speedup >= floor, (
            f"batch engine speedup regressed ({args.controller}): "
            f"{speedup:.2f}x at {servers} servers (floor {floor}x)"
        )
    if floor_fleets:
        _LOG.info(
            "speedup floor (%sx at 64+ servers, %s) holds",
            floor,
            args.controller,
        )


if __name__ == "__main__":
    main()
