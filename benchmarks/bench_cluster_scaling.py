"""Fleet-sizing sweep: server count x arrival rate under Poisson traffic.

Not a paper figure — this exercises the cluster layer the paper never models:
for each (servers, arrival rate) cell the sweep reports the fleet's
QoS-violation rate and its watts per concurrent session, the two numbers a
capacity planner trades off when sizing a transcoding fleet.
"""

from __future__ import annotations

import logging

from repro.cluster import (
    CapacityThreshold,
    ClusterOrchestrator,
    LeastLoaded,
    PoissonTraffic,
    WorkloadGenerator,
)
from repro.metrics.cluster import ClusterSummary
from repro.metrics.report import format_table


_LOG = logging.getLogger("repro.benchmarks.cluster_scaling")

SERVER_COUNTS = (1, 2, 4)
ARRIVAL_RATES = {"low": 0.2, "high": 1.0}
DURATION = 150
SEED = 0


def _run_cell(servers: int, rate: float) -> ClusterSummary:
    workload = WorkloadGenerator(
        PoissonTraffic(rate), seed=SEED, frames_per_video=48
    )
    cluster = ClusterOrchestrator(
        servers,
        workload,
        admission=CapacityThreshold(max_sessions_per_server=4, max_queue=8),
        dispatcher=LeastLoaded(),
        seed=SEED,
    )
    return cluster.run(DURATION).summary()


def _sweep() -> dict[tuple[int, str], ClusterSummary]:
    return {
        (servers, label): _run_cell(servers, rate)
        for servers in SERVER_COUNTS
        for label, rate in ARRIVAL_RATES.items()
    }


def test_cluster_scaling(run_once):
    results = run_once(_sweep)

    rows = [
        [
            f"{servers}srv/{label}",
            summary.arrivals,
            summary.admitted,
            100.0 * summary.rejection_rate,
            summary.qos_violation_pct,
            summary.watts_per_session,
            summary.fleet_mean_power_w,
        ]
        for (servers, label), summary in results.items()
    ]
    _LOG.info("\nCluster scaling — servers x arrival rate")
    _LOG.info(
        format_table(
            ["cell", "arrivals", "admitted", "rej (%)", "Δ (%)", "W/session", "fleet W"],
            rows,
            "{:.1f}",
        )
    )

    assert len(results) == len(SERVER_COUNTS) * len(ARRIVAL_RATES)
    # Every cell admitted work and measured fleet power.
    assert all(s.admitted > 0 for s in results.values())
    assert all(s.fleet_mean_power_w > 0 for s in results.values())

    # Shape checks: under high load, growing the fleet admits at least as
    # many sessions and never increases the rejection rate.
    high = [results[(servers, "high")] for servers in SERVER_COUNTS]
    assert all(b.admitted >= a.admitted for a, b in zip(high, high[1:]))
    assert all(b.rejection_rate <= a.rejection_rate for a, b in zip(high, high[1:]))
    # Low-rate traffic on the biggest fleet is effectively never rejected.
    assert results[(max(SERVER_COUNTS), "low")].rejection_rate < 0.05
