"""Ablation: exploration intensity of the MAMUT agents.

The reproduction uses epsilon-greedy exploration inside the paper's
exploration phase (see DESIGN.md).  This ablation sweeps the exploration
epsilon to show the trade-off it controls: more exploration covers the design
space faster but disturbs QoS while it lasts.
"""

from __future__ import annotations

import logging

from repro.core.config import MamutConfig
from repro.core.mamut import MamutController
from repro.manager.runner import ExperimentRunner
from repro.manager.scenario import scenario_one
from repro.metrics.report import format_table


_LOG = logging.getLogger("repro.benchmarks.ablation_exploration")

EPSILONS = (0.05, 0.15, 0.5)


def _factory(epsilon: float):
    def build(request, seed):
        config = MamutConfig.for_request(request, seed=seed)
        config.exploration_epsilon = epsilon
        return MamutController(config)

    return build


def _run_sweep():
    specs = scenario_one(1, 1, num_frames=240, seed=0)
    runner = ExperimentRunner(seed=0)
    return runner.compare(
        {f"epsilon={eps}": _factory(eps) for eps in EPSILONS},
        specs,
        repetitions=2,
        warmup_videos=1,
    )


def test_ablation_exploration(run_once):
    results = run_once(_run_sweep)

    rows = [
        [label, r.qos_violation_pct, r.mean_power_w, r.mean_fps]
        for label, r in results.items()
    ]
    _LOG.info("\nAblation — exploration epsilon (1HR + 1LR, Scenario I)")
    _LOG.info(format_table(["setting", "Δ (%)", "Power (W)", "FPS"], rows))

    assert len(results) == len(EPSILONS)
    assert all(0.0 <= r.qos_violation_pct <= 100.0 for r in results.values())
