"""Table II: Scenario II averages per video mix and controller.

Paper reference: Table II — average power (Watts), thread count (Nth), FPS and
QoS violations (Δ) for the heuristic, mono-agent and MAMUT controllers over
nine video mixes (1HR1LR .. 3HR3LR), where each user's initial video is
followed by four randomly selected videos of the same resolution.
"""

from __future__ import annotations

import logging

from collections import defaultdict

from repro.analysis.tables import table2_scenario_two
from repro.metrics.report import format_table


_LOG = logging.getLogger("repro.benchmarks.table2_scenario2")

MIXES = ((1, 1), (1, 2), (2, 1), (2, 2), (2, 3), (2, 4), (3, 1), (3, 2), (3, 3))


def test_table2_scenario2(run_once):
    rows = run_once(
        table2_scenario_two,
        mixes=MIXES,
        followers=4,
        frames_per_video=96,
        repetitions=2,
        warmup_videos=5,
    )

    table = [
        [r.workload, r.controller, r.power_w, r.mean_threads, r.mean_fps, r.qos_violation_pct]
        for r in rows
    ]
    _LOG.info("\nTable II — Scenario II averages")
    _LOG.info(
        format_table(
            ["mix", "controller", "Watts", "Nth", "FPS", "Δ (%)"], table, "{:.1f}"
        )
    )

    assert len(rows) == len(MIXES) * 3
    assert all(r.power_w > 50.0 for r in rows)

    # Shape checks: averaged over the mixes, the heuristic burns the most
    # power and violates QoS the most; MAMUT matches or beats the mono-agent
    # on power (the paper reports 4-20% savings).
    power = defaultdict(list)
    qos = defaultdict(list)
    for r in rows:
        power[r.controller].append(r.power_w)
        qos[r.controller].append(r.qos_violation_pct)
    mean_power = {c: sum(v) / len(v) for c, v in power.items()}
    mean_qos = {c: sum(v) / len(v) for c, v in qos.items()}
    assert mean_power["MAMUT"] < mean_power["Heuristic"]
    assert mean_qos["MAMUT"] < mean_qos["Heuristic"]
