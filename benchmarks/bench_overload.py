"""Overload control on a flash crowd: shed load vs. degrade quality.

Not a paper figure — this is the overload experiment the brownout subsystem
exists for.  A fixed two-server fleet is hit by the same flash crowd (base
traffic multiplied mid-run) under three control configurations, from
identical seeds:

* ``reject`` — classic capacity admission with a shallow queue: overload is
  answered by turning users away at the door;
* ``patient-queue`` — a deep queue plus per-request patience deadlines:
  users wait, and the ones who wait too long are *dropped* (shed after
  queueing, the costliest kind of rejection);
* ``brownout`` — the same deep queue and patience, plus a
  :class:`~repro.cluster.brownout.BrownoutController`: under sustained
  pressure the fleet serves new sessions degraded (higher QP, relaxed FPS
  target) while capacity admission unlocks extra session slots, so every
  user is served instead of shed.

The headline claim (pinned by ``tests/test_cluster_overload.py``): on the
flash crowd the brownout configuration serves every arriving request — 0
rejected, 0 dropped, 0 abandoned — where both no-brownout baselines shed
load; the price is paid in quality (lower PSNR, more FPS violations), which
is the rejected-vs-degraded frontier the results table shows.

Results are written to ``BENCH_overload.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_overload.py          # full
    PYTHONPATH=src python benchmarks/bench_overload.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import logging
import platform
from pathlib import Path

from repro.cluster import (
    BrownoutController,
    CapacityThreshold,
    ClusterOrchestrator,
    FlashCrowdTraffic,
    WorkloadGenerator,
)
from repro.manager.factories import static_factory
from repro.metrics.report import format_table
from repro.telemetry import LOG_LEVELS, configure_logging, stamp_provenance

_LOG = logging.getLogger("repro.benchmarks.overload")

SERVERS = 2
SESSIONS_PER_SERVER = 4
SEED = 0

#: Normal-operation encode configuration (matches the autoscale benchmark).
NORMAL_QP, NORMAL_THREADS = 32, 4
#: Brownout configuration: higher QP (faster, lower PSNR), fewer threads
#: (more sessions fit on the cores before contention bites).
DEGRADED_QP, DEGRADED_THREADS = 40, 2


def _scenario(smoke: bool) -> dict:
    if smoke:
        return {
            "traffic": lambda: FlashCrowdTraffic(
                0.25, peak_multiplier=6.0, start=10, duration=10
            ),
            "duration": 35,
            "frames_per_video": 12,
            "patience": 8,
            "max_queue": 48,
            "shallow_queue": 4,
            "brownout_extra_sessions": 10,
        }
    return {
        "traffic": lambda: FlashCrowdTraffic(
            0.25, peak_multiplier=6.0, start=40, duration=25
        ),
        "duration": 100,
        "frames_per_video": 16,
        "patience": 10,
        "max_queue": 64,
        "shallow_queue": 6,
        "brownout_extra_sessions": 10,
    }


def _run_config(scenario: dict, *, max_queue: int, patience, brownout) -> dict:
    workload = WorkloadGenerator(
        scenario["traffic"](),
        seed=SEED,
        frames_per_video=scenario["frames_per_video"],
        patience_steps=patience,
    )
    extra = scenario["brownout_extra_sessions"] if brownout is not None else 0
    cluster = ClusterOrchestrator(
        SERVERS,
        workload,
        admission=CapacityThreshold(
            max_sessions_per_server=SESSIONS_PER_SERVER,
            max_queue=max_queue,
            brownout_extra_sessions=extra,
        ),
        controller_factory=static_factory(
            qp=NORMAL_QP, threads=NORMAL_THREADS, frequency_ghz=3.2
        ),
        seed=SEED,
        brownout=brownout,
    )
    result = cluster.run(scenario["duration"])
    summary = result.summary()
    records = [
        record
        for server in result.records_by_server
        for session in server.values()
        for record in session
    ]
    out = summary.to_dict()
    # Derived metric the summary does not carry; from_dict ignores it.
    out["mean_psnr_db"] = (
        sum(r.psnr_db for r in records) / len(records) if records else 0.0
    )
    return out


def make_brownout() -> BrownoutController:
    return BrownoutController(
        sessions_per_server=SESSIONS_PER_SERVER,
        enter_queue_per_server=2.0,
        exit_queue_per_server=0.25,
        enter_steps=2,
        exit_steps=6,
        fps_relax=0.75,
        degraded_factory=static_factory(
            qp=DEGRADED_QP, threads=DEGRADED_THREADS, frequency_ghz=3.2
        ),
    )


def run_benchmark(smoke: bool) -> dict:
    scenario = _scenario(smoke)
    configs = {
        "reject": dict(
            max_queue=scenario["shallow_queue"], patience=None, brownout=None
        ),
        "patient-queue": dict(
            max_queue=scenario["max_queue"],
            patience=scenario["patience"],
            brownout=None,
        ),
        "brownout": dict(
            max_queue=scenario["max_queue"],
            patience=scenario["patience"],
            brownout=make_brownout(),
        ),
    }
    results = {
        label: _run_config(scenario, **config) for label, config in configs.items()
    }

    _LOG.info("=== flash crowd, fixed fleet, three overload-control configs ===")
    _LOG.info(
        format_table(
            [
                "config",
                "rejected",
                "dropped",
                "abandoned",
                "degraded",
                "Δ (%)",
                "PSNR (dB)",
                "energy (kJ)",
            ],
            [
                [
                    label,
                    r["rejected"],
                    r["dropped"],
                    r["abandoned"],
                    r["degraded_sessions"],
                    r["qos_violation_pct"],
                    r["mean_psnr_db"],
                    r["fleet_energy_j"] / 1000.0,
                ]
                for label, r in results.items()
            ],
            float_format="{:.2f}",
        )
    )

    scenario_dict = {
        "duration": scenario["duration"],
        "frames_per_video": scenario["frames_per_video"],
        "patience": scenario["patience"],
        "brownout_extra_sessions": scenario["brownout_extra_sessions"],
    }
    return stamp_provenance(
        {
            "benchmark": "overload",
            "servers": SERVERS,
            "sessions_per_server": SESSIONS_PER_SERVER,
            "seed": SEED,
            "smoke": smoke,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "scenario": scenario_dict,
            "configs": results,
        },
        kind="overload",
        seed=SEED,
        config={
            "servers": SERVERS,
            "sessions_per_server": SESSIONS_PER_SERVER,
            "smoke": smoke,
            "scenario": scenario_dict,
        },
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one tiny scenario: a fast CI canary for the overload path",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_overload.json",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="info",
        help="verbosity of the repro logger",
    )
    args = parser.parse_args()
    configure_logging(args.log_level)

    payload = run_benchmark(args.smoke)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    _LOG.info(f"\nwrote {args.output}")

    # The acceptance claim (also pinned by tests/test_cluster_overload.py):
    # brownout serves everyone where both baselines shed load.
    results = payload["configs"]
    brownout = results["brownout"]
    assert brownout["rejected"] == 0, brownout
    assert brownout["dropped"] == 0, brownout
    assert brownout["abandoned"] == 0, brownout
    assert brownout["degraded_sessions"] > 0 and brownout["brownout_steps"] > 0
    for label in ("reject", "patient-queue"):
        shed = (
            results[label]["rejected"]
            + results[label]["dropped"]
            + results[label]["abandoned"]
        )
        assert shed > 0, f"{label} should shed load on the flash crowd"
    # The price of serving everyone is quality, not power.
    assert brownout["mean_psnr_db"] < results["patient-queue"]["mean_psnr_db"]
    _LOG.info("overload acceptance claims hold")


if __name__ == "__main__":
    main()
