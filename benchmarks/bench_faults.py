"""Fault injection on a serving fleet: retry + migration vs. naive shedding.

Not a paper figure — this is the chaos experiment the fault subsystem exists
for.  A fixed fleet serves the same Poisson session stream while servers
crash with exponentially distributed uptimes (and recover after a seeded
MTTR), at several mean-time-between-failure settings.  At every MTBF two
configurations run from identical workload, cluster and fault seeds — the
fault *schedule* is bitwise the same, only the response differs:

* ``shed`` — naive load shedding (``max_retries=0``): every session on a
  crashed server is lost and its user counted as failed;
* ``recover`` — bounded retries with session migration
  (``max_retries=3``): salvaged sessions re-enter admission with their
  learned controller state restored onto the replacement server.

The headline claim (pinned by ``tests/test_cluster_faults.py`` mechanics and
asserted here per MTBF): at the same fault schedule the recovery
configuration *serves* strictly more sessions — ``served = admitted -
failed`` — than naive shedding, and the gap widens as MTBF shrinks.

Two further sweeps exercise the failure-domain machinery:

* **domain sweep** — a 6-server fleet spread over 3 zones loses ``k``
  whole zones simultaneously to a declarative :class:`KillSchedule`
  (``k`` = 1..3); shed and recover run the identical zonal schedule with
  :class:`FailureAware` dispatch.  The acceptance claim: bounded retries
  absorb a full single-zone outage (zero failed users) that naive
  shedding turns into failures, quantifying how many simultaneous domain
  outages the retry budget can absorb.
* **checkpoint sweep** — the same single-zone kill at several
  ``checkpoint_interval_frames`` settings.  Without checkpoints a retry
  recomputes every frame since the start of the interrupted video; with
  them it resumes from the last checkpoint, so total recomputed frames
  are bounded by ``retries * (interval - 1)`` while the modeled
  checkpoint bandwidth cost (extra watts on every write) rises as the
  interval shrinks — the recomputation/bandwidth trade-off in one table.

Results are written to ``BENCH_faults.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_faults.py          # full
    PYTHONPATH=src python benchmarks/bench_faults.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import logging
import platform
from pathlib import Path

from repro.cluster import (
    CapacityThreshold,
    ClusterOrchestrator,
    FailureAware,
    FailureTopology,
    FaultConfig,
    KillEntry,
    KillSchedule,
    PoissonTraffic,
    WorkloadGenerator,
)
from repro.manager.factories import static_factory
from repro.metrics.report import format_table
from repro.telemetry import LOG_LEVELS, configure_logging, stamp_provenance

_LOG = logging.getLogger("repro.benchmarks.faults")

SERVERS = 3
SESSIONS_PER_SERVER = 3
SEED = 0
FAULT_SEED = 7
MTTR_STEPS = 5.0
RETRY_BUDGET = 3

# Domain sweep: a larger fleet spread across failure zones.
DOMAIN_SERVERS = 6
ZONES = 3
RACKS_PER_ZONE = 2
KILL_STEP = 10
KILL_DURATION = 6


def _scenario(smoke: bool) -> dict:
    if smoke:
        return {
            "mtbf_sweep": [25.0],
            "kill_zone_sweep": [1],
            "checkpoint_sweep": [None, 2],
            "rate": 0.6,
            "duration": 40,
            "frames_per_video": 8,
            "playlist_videos": 2,
            "patience": 12,
            "max_queue": 8,
        }
    return {
        "mtbf_sweep": [20.0, 40.0, 80.0],
        "kill_zone_sweep": [1, 2, 3],
        "checkpoint_sweep": [None, 8, 4, 2],
        "rate": 0.6,
        "duration": 120,
        "frames_per_video": 10,
        "playlist_videos": 2,
        "patience": 12,
        "max_queue": 8,
    }


def _run_config(scenario: dict, *, mtbf: float, max_retries: int) -> dict:
    workload = WorkloadGenerator(
        PoissonTraffic(scenario["rate"]),
        seed=SEED,
        playlist_videos=scenario["playlist_videos"],
        frames_per_video=scenario["frames_per_video"],
        patience_steps=scenario["patience"],
    )
    cluster = ClusterOrchestrator(
        SERVERS,
        workload,
        admission=CapacityThreshold(
            max_sessions_per_server=SESSIONS_PER_SERVER,
            max_queue=scenario["max_queue"],
        ),
        controller_factory=static_factory(qp=32, threads=4, frequency_ghz=3.2),
        seed=SEED,
        faults=FaultConfig(
            crash_mtbf_steps=mtbf,
            crash_mttr_steps=MTTR_STEPS,
            max_retries=max_retries,
            retry_backoff_steps=1,
            seed=FAULT_SEED,
        ),
    )
    result = cluster.run(scenario["duration"])
    out = result.summary().to_dict()
    # Derived metric the summary does not carry; from_dict ignores it.
    out["served"] = out["admitted"] - out["failed"]
    return out


def _run_domain_config(
    scenario: dict,
    *,
    kill_zones: int,
    max_retries: int,
    checkpoint_interval: int | None = None,
) -> dict:
    """One zonal chaos run: kill ``kill_zones`` whole zones at KILL_STEP."""
    workload = WorkloadGenerator(
        PoissonTraffic(scenario["rate"]),
        seed=SEED,
        playlist_videos=scenario["playlist_videos"],
        frames_per_video=scenario["frames_per_video"],
        patience_steps=scenario["patience"],
    )
    schedule = KillSchedule(
        tuple(
            KillEntry(zone=zone, step=KILL_STEP, duration=KILL_DURATION)
            for zone in range(kill_zones)
        )
    )
    cluster = ClusterOrchestrator(
        DOMAIN_SERVERS,
        workload,
        admission=CapacityThreshold(
            max_sessions_per_server=SESSIONS_PER_SERVER,
            max_queue=scenario["max_queue"],
        ),
        dispatcher=FailureAware(),
        controller_factory=static_factory(qp=32, threads=4, frequency_ghz=3.2),
        seed=SEED,
        faults=FaultConfig(
            crash_mttr_steps=MTTR_STEPS,
            max_retries=max_retries,
            retry_backoff_steps=1,
            seed=FAULT_SEED,
            topology=FailureTopology(
                zones=ZONES, racks_per_zone=RACKS_PER_ZONE, seed=FAULT_SEED
            ),
            kill_schedule=schedule,
            checkpoint_interval_frames=checkpoint_interval,
        ),
    )
    result = cluster.run(scenario["duration"])
    out = result.summary().to_dict()
    out["served"] = out["admitted"] - out["failed"]
    return out


def run_benchmark(smoke: bool) -> dict:
    scenario = _scenario(smoke)
    sweep = []
    for mtbf in scenario["mtbf_sweep"]:
        shed = _run_config(scenario, mtbf=mtbf, max_retries=0)
        recover = _run_config(scenario, mtbf=mtbf, max_retries=RETRY_BUDGET)
        # Identical seeds -> identical fault schedule for both responses.
        assert shed["server_crashes"] == recover["server_crashes"]
        sweep.append({"mtbf": mtbf, "shed": shed, "recover": recover})

    _LOG.info("=== crash MTBF sweep: naive shedding vs. retry + migration ===")
    _LOG.info(
        format_table(
            [
                "MTBF",
                "crashes",
                "shed: served",
                "shed: failed",
                "rec: served",
                "rec: failed",
                "rec: retried",
                "healthy (mean)",
            ],
            [
                [
                    point["mtbf"],
                    point["shed"]["server_crashes"],
                    point["shed"]["served"],
                    point["shed"]["failed"],
                    point["recover"]["served"],
                    point["recover"]["failed"],
                    point["recover"]["retried"],
                    point["recover"]["mean_healthy_servers"],
                ]
                for point in sweep
            ],
            float_format="{:.2f}",
        )
    )

    domain_sweep = []
    for kill_zones in scenario["kill_zone_sweep"]:
        shed = _run_domain_config(scenario, kill_zones=kill_zones, max_retries=0)
        recover = _run_domain_config(
            scenario, kill_zones=kill_zones, max_retries=RETRY_BUDGET
        )
        # Same declarative schedule -> the same zones go down in both runs.
        assert shed["failed_domains"] == recover["failed_domains"]
        domain_sweep.append(
            {"kill_zones": kill_zones, "shed": shed, "recover": recover}
        )

    _LOG.info("=== domain sweep: simultaneous zone outages absorbed ===")
    _LOG.info(
        format_table(
            [
                "zones killed",
                "crashes",
                "shed: served",
                "shed: failed",
                "rec: served",
                "rec: failed",
                "rec: retried",
                "domains (mean)",
            ],
            [
                [
                    point["kill_zones"],
                    point["shed"]["server_crashes"],
                    point["shed"]["served"],
                    point["shed"]["failed"],
                    point["recover"]["served"],
                    point["recover"]["failed"],
                    point["recover"]["retried"],
                    point["recover"]["mean_available_domains"],
                ]
                for point in domain_sweep
            ],
            float_format="{:.2f}",
        )
    )

    checkpoint_sweep = []
    for interval in scenario["checkpoint_sweep"]:
        run = _run_domain_config(
            scenario,
            kill_zones=1,
            max_retries=RETRY_BUDGET,
            checkpoint_interval=interval,
        )
        checkpoint_sweep.append({"interval": interval, "run": run})

    _LOG.info("=== checkpoint sweep: recomputation vs. bandwidth ===")
    _LOG.info(
        format_table(
            [
                "interval",
                "retried",
                "recomputed frames",
                "ckpt writes",
                "ckpt energy (J)",
                "served",
            ],
            [
                [
                    "none" if point["interval"] is None else point["interval"],
                    point["run"]["retried"],
                    point["run"]["recomputed_frames"],
                    point["run"]["checkpoint_writes"],
                    point["run"]["checkpoint_energy_j"],
                    point["run"]["served"],
                ]
                for point in checkpoint_sweep
            ],
            float_format="{:.2f}",
        )
    )

    scenario_dict = {
        key: scenario[key]
        for key in (
            "rate", "duration", "frames_per_video",
            "playlist_videos", "patience", "max_queue",
            "kill_zone_sweep", "checkpoint_sweep",
        )
    }
    return stamp_provenance(
        {
            "benchmark": "faults",
            "servers": SERVERS,
            "sessions_per_server": SESSIONS_PER_SERVER,
            "seed": SEED,
            "fault_seed": FAULT_SEED,
            "mttr_steps": MTTR_STEPS,
            "retry_budget": RETRY_BUDGET,
            "smoke": smoke,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "zones": ZONES,
            "racks_per_zone": RACKS_PER_ZONE,
            "kill_step": KILL_STEP,
            "kill_duration": KILL_DURATION,
            "scenario": scenario_dict,
            "sweep": sweep,
            "domain_sweep": domain_sweep,
            "checkpoint_sweep": checkpoint_sweep,
        },
        kind="faults",
        seed={"seed": SEED, "fault_seed": FAULT_SEED},
        config={
            "servers": SERVERS,
            "sessions_per_server": SESSIONS_PER_SERVER,
            "mttr_steps": MTTR_STEPS,
            "retry_budget": RETRY_BUDGET,
            "smoke": smoke,
            "scenario": scenario_dict,
        },
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one MTBF point on a short run: a fast CI canary for the fault path",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_faults.json",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="info",
        help="verbosity of the repro logger",
    )
    args = parser.parse_args()
    configure_logging(args.log_level)

    payload = run_benchmark(args.smoke)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    _LOG.info(f"\nwrote {args.output}")

    # The acceptance claim: at every MTBF the same fault schedule crashes
    # servers with sessions aboard, and retry + migration serves strictly
    # more of them than naive shedding.
    for point in payload["sweep"]:
        shed, recover = point["shed"], point["recover"]
        assert shed["server_crashes"] > 0, point
        assert shed["failed"] > 0, point
        assert recover["served"] > shed["served"], point
        assert recover["failed"] < shed["failed"], point
        assert recover["retried"] > 0, point

    # Domain acceptance: bounded retries absorb a full single-zone outage
    # (no user sees a failure) that naive shedding cannot, and at every
    # outage width recovery serves at least as many sessions as shedding.
    for point in payload["domain_sweep"]:
        shed, recover = point["shed"], point["recover"]
        assert shed["failed_domains"] >= point["kill_zones"], point
        assert recover["served"] >= shed["served"], point
        if point["kill_zones"] == 1:
            assert shed["failed"] > 0, point
            assert recover["failed"] == 0, point
            assert recover["served"] > shed["served"], point

    # Checkpoint acceptance: recomputation is bounded by the interval
    # (each retry resumes from the last multiple of it) and the modeled
    # write cost is only metered when checkpoints are on.
    for point in payload["checkpoint_sweep"]:
        run, interval = point["run"], point["interval"]
        assert run["retried"] > 0, point
        if interval is None:
            assert run["checkpoint_writes"] == 0, point
        else:
            assert run["recomputed_frames"] <= run["retried"] * (interval - 1), point
            assert run["checkpoint_writes"] > 0, point
            assert run["checkpoint_energy_j"] > 0, point
    no_ckpt = payload["checkpoint_sweep"][0]["run"]
    tightest = payload["checkpoint_sweep"][-1]["run"]
    assert tightest["recomputed_frames"] < no_ckpt["recomputed_frames"], (
        tightest["recomputed_frames"], no_ckpt["recomputed_frames"],
    )
    _LOG.info("fault-recovery acceptance claims hold")


if __name__ == "__main__":
    main()
