"""Ablation: the agent activation periods of Fig. 3.

The paper chooses different periods per agent (QP every 24 frames, threads
every 12, DVFS every 6) so that the slow/expensive knobs change rarely and the
cheap knob (frequency) tracks content variation.  This ablation compares the
paper's schedule against a uniform schedule where all three agents act every
12 frames (staggered to avoid overlaps).
"""

from __future__ import annotations

import logging

from repro.core.config import MamutConfig
from repro.core.mamut import MamutController
from repro.core.schedule import AgentSchedule, AgentSlot
from repro.manager.runner import ExperimentRunner
from repro.manager.scenario import scenario_one
from repro.metrics.report import format_table


_LOG = logging.getLogger("repro.benchmarks.ablation_agent_periods")


def _factory(schedule_builder):
    def build(request, seed):
        config = MamutConfig.for_request(request, seed=seed)
        config.schedule = schedule_builder()
        return MamutController(config)

    return build


def _paper_schedule() -> AgentSchedule:
    return AgentSchedule.mamut_default()


def _uniform_schedule() -> AgentSchedule:
    return AgentSchedule(
        [AgentSlot("qp", 12, 0), AgentSlot("threads", 12, 4), AgentSlot("dvfs", 12, 8)]
    )


def _run_ablation():
    specs = scenario_one(1, 1, num_frames=240, seed=0)
    runner = ExperimentRunner(seed=0)
    return runner.compare(
        {
            "paper periods (24/12/6)": _factory(_paper_schedule),
            "uniform periods (12/12/12)": _factory(_uniform_schedule),
        },
        specs,
        repetitions=2,
        warmup_videos=1,
    )


def test_ablation_agent_periods(run_once):
    results = run_once(_run_ablation)

    rows = [
        [label, r.qos_violation_pct, r.mean_power_w, r.mean_frequency_ghz]
        for label, r in results.items()
    ]
    _LOG.info("\nAblation — agent activation periods (1HR + 1LR, Scenario I)")
    _LOG.info(format_table(["schedule", "Δ (%)", "Power (W)", "Freq (GHz)"], rows))

    assert len(results) == 2
    assert all(r.mean_power_w > 40.0 for r in results.values())
