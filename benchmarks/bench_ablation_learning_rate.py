"""Ablation: the cross-agent term of the learning-rate function (Eq. 3).

The paper argues (Sec. IV-B) that the second term of Eq. 3 — which keeps the
learning rate high until the *other* agents have tried all of their actions —
prevents an agent from prematurely declaring its exploration finished.  This
ablation runs MAMUT on the same workload with the paper's learning rate
(beta' = 0.2) and with the conventional visit-count-only learning rate
(beta' = 0), and reports QoS and power for both.
"""

from __future__ import annotations

import logging

from repro.core.config import MamutConfig
from repro.core.learning_rate import LearningRateParameters
from repro.core.mamut import MamutController
from repro.manager.runner import ExperimentRunner
from repro.manager.scenario import scenario_one
from repro.metrics.report import format_table


_LOG = logging.getLogger("repro.benchmarks.ablation_learning_rate")


def _factory(beta_prime: float):
    def build(request, seed):
        config = MamutConfig.for_request(request, seed=seed)
        config.learning_rate = LearningRateParameters(beta_prime=beta_prime)
        return MamutController(config)

    return build


def _run_ablation():
    specs = scenario_one(1, 1, num_frames=240, seed=0)
    runner = ExperimentRunner(seed=0)
    return runner.compare(
        {
            "Eq.3 (beta'=0.2)": _factory(0.2),
            "visit-count only (beta'=0)": _factory(0.0),
        },
        specs,
        repetitions=2,
        warmup_videos=1,
    )


def test_ablation_learning_rate(run_once):
    results = run_once(_run_ablation)

    rows = [
        [label, r.qos_violation_pct, r.mean_power_w, r.mean_fps]
        for label, r in results.items()
    ]
    _LOG.info("\nAblation — learning-rate function (1HR + 1LR, Scenario I)")
    _LOG.info(format_table(["learning rate", "Δ (%)", "Power (W)", "FPS"], rows))

    assert set(results) == {"Eq.3 (beta'=0.2)", "visit-count only (beta'=0)"}
    assert all(0.0 <= r.qos_violation_pct <= 100.0 for r in results.values())
