"""Figure 5: detailed execution trace of MAMUT on one HR video.

Paper reference: Fig. 5 — per-frame FPS, PSNR, QP, threads and frequency for
MAMUT encoding a single 1080p video over ~500 frames.  The trace includes the
learning transient at the beginning (as in the paper, where FPS dips early
before the agents settle).
"""

from __future__ import annotations

import logging

import statistics

from repro.analysis.figures import fig5_trace
from repro.metrics.report import format_table


_LOG = logging.getLogger("repro.benchmarks.fig5_trace")


def test_fig5_trace(run_once):
    trace = run_once(fig5_trace, sequence_name="Cactus", num_frames=500)

    window = 50
    rows = []
    for start in range(0, 500, window):
        sl = slice(start, start + window)
        rows.append(
            [
                f"{start}-{start + window}",
                statistics.mean(trace["fps"][sl]),
                statistics.mean(trace["psnr_db"][sl]),
                statistics.mean(trace["qp"][sl]),
                statistics.mean(trace["threads"][sl]),
                statistics.mean(trace["frequency_ghz"][sl]),
            ]
        )
    _LOG.info("\nFigure 5 — MAMUT trace on one HR video (50-frame window means)")
    _LOG.info(
        format_table(
            ["frames", "FPS", "PSNR (dB)", "QP", "threads", "freq (GHz)"],
            rows,
            float_format="{:.2f}",
        )
    )

    assert len(trace["fps"]) == 500
    # Shape checks mirroring the figure: the second half of the trace is
    # better behaved than the first (learning), threads sit in the upper part
    # of the range, frequency keeps adapting within the DVFS set.
    first_violations = sum(1 for f in trace["fps"][:250] if f < 24.0)
    second_violations = sum(1 for f in trace["fps"][250:] if f < 24.0)
    assert second_violations <= first_violations
    assert 1.6 <= statistics.mean(trace["frequency_ghz"][250:]) <= 3.2
    assert statistics.mean(trace["threads"][250:]) >= 4.0
