"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and prints
the corresponding rows/series (run pytest with ``-s`` to see them).  The
pytest-benchmark fixture is used with a single round so the timing reflects
one full regeneration of the experiment.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a regeneration function exactly once under the benchmark fixture."""

    def _run(function, *args, **kwargs):
        return benchmark.pedantic(
            function, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run
