"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and logs
the corresponding rows/series on the ``repro`` logger (run pytest with
``-s`` to see them).  The pytest-benchmark fixture is used with a single
round so the timing reflects one full regeneration of the experiment.
"""

from __future__ import annotations

import pytest

from repro.telemetry import configure_logging

# The table/figure benches report through the "repro" logger; give it its
# stdout handler up front so `pytest -s` shows the rows as before.
configure_logging("info")


@pytest.fixture
def run_once(benchmark):
    """Run a regeneration function exactly once under the benchmark fixture."""

    def _run(function, *args, **kwargs):
        return benchmark.pedantic(
            function, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run
