"""Customising the platform and the controller's design space.

Shows the extension points of the library:

* a different server (single socket, 8 cores, no SMT) with a recalibrated
  power model;
* a MAMUT controller restricted to a smaller QP set and a coarser DVFS set,
  with a custom agent schedule;
* direct use of the sysfs-like DVFS driver, as one would on real hardware.

Run with::

    python examples/custom_agent_platform.py
"""

from __future__ import annotations

import argparse
import logging

from repro import (
    MamutConfig,
    MamutController,
    Orchestrator,
    TranscodingRequest,
    TranscodingSession,
    make_sequence,
)
from repro.core.actions import ActionSet
from repro.core.rewards import RewardConfig
from repro.core.schedule import AgentSchedule, AgentSlot
from repro.core.states import StateSpace
from repro.metrics.report import format_table
from repro.platform.dvfs import DvfsDriver
from repro.platform.power import PowerModel, PowerModelParameters
from repro.platform.server import MulticoreServer
from repro.platform.topology import CpuTopology

from repro.telemetry import LOG_LEVELS, configure_logging

_LOG = logging.getLogger("repro.examples.custom_agent_platform")


def build_small_server() -> MulticoreServer:
    """A single-socket 8-core server without SMT, with a lower power budget."""
    topology = CpuTopology(sockets=1, cores_per_socket=8, smt=1, smt_efficiency=0.75)
    power_model = PowerModel(
        PowerModelParameters(base_power_w=20.0, core_dynamic_w=4.5, core_leakage_w=1.2)
    )
    driver = DvfsDriver(topology=topology)
    return MulticoreServer(topology=topology, power_model=power_model, dvfs_driver=driver)


def build_controller(request: TranscodingRequest) -> MamutController:
    """MAMUT restricted to a smaller design space with a custom schedule."""
    power_cap_w = 70.0
    config = MamutConfig(
        qp_actions=ActionSet("qp", (27, 32, 37)),
        thread_actions=ActionSet("threads", (2, 4, 6, 8)),
        dvfs_actions=ActionSet("dvfs", (1.9, 2.6, 3.2)),
        reward=RewardConfig(
            fps_target=request.target_fps,
            bandwidth_mbps=request.bandwidth_mbps,
            power_cap_w=power_cap_w,
        ),
        state_space=StateSpace(fps_target=request.target_fps, power_cap_w=power_cap_w),
        schedule=AgentSchedule(
            [AgentSlot("qp", 18, 0), AgentSlot("threads", 9, 1), AgentSlot("dvfs", 3, 2)]
        ),
        record_history=True,
        seed=1,
    )
    return MamutController(config)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="info",
        help="verbosity of the repro logger",
    )
    configure_logging(parser.parse_args().log_level)
    server = build_small_server()
    sequence = make_sequence("ParkScene", num_frames=400, seed=1)
    request = TranscodingRequest(user_id="edge-node", sequence=sequence)
    controller = build_controller(request)

    session = TranscodingSession(request, controller)
    result = Orchestrator([session], server=server).run()
    summary = result.summary()
    per_session = summary.sessions["edge-node"]

    _LOG.info("=== MAMUT on a custom 8-core platform with a reduced design space ===")
    _LOG.info(
        format_table(
            ["metric", "value"],
            [
                ["mean FPS", per_session.mean_fps],
                ["QoS violations (Δ, %)", per_session.qos_violation_pct],
                ["mean threads", per_session.mean_threads],
                ["mean frequency (GHz)", per_session.mean_frequency_ghz],
                ["mean server power (W)", summary.mean_power_w],
            ],
            float_format="{:.2f}",
        )
    )

    # The server mirrors its last allocation into the sysfs-like DVFS driver.
    _LOG.info("\nPer-core frequencies after the last step (via the sysfs facade):")
    for core in server.topology.core_ids():
        khz = server.dvfs.sysfs_read(
            f"/sys/devices/system/cpu/cpu{core}/cpufreq/scaling_cur_freq"
        )
        _LOG.info(f"  cpu{core}: {int(khz) / 1e6:.1f} GHz")

    # A short excerpt of the agent activation history.
    _LOG.info("\nLast five agent activations:")
    for activation in controller.history[-5:]:
        _LOG.info(
            f"  frame {activation.frame_index:4d}  {activation.agent:8s} "
            f"-> {activation.action_value}  ({activation.phase.value})"
        )


if __name__ == "__main__":
    main()
