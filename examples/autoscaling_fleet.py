"""An elastic transcoding fleet riding out a flash crowd on diurnal traffic.

The cluster example (``cluster_simulation.py``) sizes its fleet by hand; this
one lets an autoscaling policy do it.  The same day-of-traffic-plus-viral-
burst workload is served three times from identical seeds:

* a **fixed** fleet sized for the mean load (cheap, but the burst overwhelms
  its queue),
* a **reactive** autoscaler (threshold-with-hysteresis on queue length and
  utilization: capacity chases the burst after it arrives), and
* a **predictive** autoscaler (EWMA forecast of the arrival rate: capacity
  starts growing while the ramp is still building).

Commissioned servers idle through a provisioning warm-up before taking
sessions; decommissioned servers drain before retiring, so scaling down
never kills an active session.

Run with::

    python examples/autoscaling_fleet.py
"""

from __future__ import annotations

import argparse
import logging

from repro.cluster import (
    CapacityThreshold,
    ClusterOrchestrator,
    CompositeTraffic,
    DiurnalTraffic,
    FlashCrowdTraffic,
    PredictiveScaling,
    ReactiveThreshold,
    WorkloadGenerator,
)
from repro.metrics.report import format_table

from repro.telemetry import LOG_LEVELS, configure_logging

_LOG = logging.getLogger("repro.examples.autoscaling_fleet")

DURATION = 300          # arrival window, in cluster steps
FRAMES_PER_VIDEO = 36   # one step transcodes one frame
SESSIONS_PER_SERVER = 4
INITIAL_SERVERS = 2
MAX_SERVERS = 12
WARMUP_STEPS = 4
SEED = 42


def make_workload() -> WorkloadGenerator:
    # A "day" with a 4x flash crowd during the evening peak.
    traffic = CompositeTraffic(
        [
            DiurnalTraffic(base_rate=0.5, amplitude=0.8, period=DURATION),
            FlashCrowdTraffic(
                base_rate=0.2, peak_multiplier=4.0, start=180, duration=50
            ),
        ]
    )
    return WorkloadGenerator(
        traffic, seed=SEED, hr_fraction=0.4, frames_per_video=FRAMES_PER_VIDEO
    )


def run_fleet(label, autoscaler):
    cluster = ClusterOrchestrator(
        INITIAL_SERVERS,
        make_workload(),
        admission=CapacityThreshold(
            max_sessions_per_server=SESSIONS_PER_SERVER, max_queue=24
        ),
        seed=SEED,
        autoscaler=autoscaler,
        min_servers=1,
        max_servers=MAX_SERVERS,
        provision_warmup_steps=WARMUP_STEPS,
    )
    return label, cluster.run(DURATION).summary()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="info",
        help="verbosity of the repro logger",
    )
    configure_logging(parser.parse_args().log_level)
    results = [
        run_fleet("fixed (mean-sized)", None),
        run_fleet(
            "reactive",
            ReactiveThreshold(sessions_per_server=SESSIONS_PER_SERVER),
        ),
        run_fleet(
            "predictive",
            PredictiveScaling(
                sessions_per_server=SESSIONS_PER_SERVER,
                service_steps=FRAMES_PER_VIDEO,
            ),
        ),
    ]

    _LOG.info("=== Diurnal + flash-crowd day, identical seeds, three fleets ===")
    _LOG.info(
        format_table(
            [
                "fleet",
                "admitted",
                "rejected",
                "abandoned",
                "mean size",
                "peak",
                "energy (kJ)",
                "Δ (%)",
            ],
            [
                [
                    label,
                    s.admitted,
                    s.rejected,
                    s.abandoned,
                    s.mean_fleet_size,
                    s.peak_fleet_size,
                    s.fleet_energy_j / 1000.0,
                    s.qos_violation_pct,
                ]
                for label, s in results
            ],
            float_format="{:.2f}",
        )
    )

    _LOG.info("\nScaling activity:")
    _LOG.info(
        format_table(
            ["fleet", "ups", "downs", "added", "removed", "transient Δ (%)"],
            [
                [
                    label,
                    s.scale_up_events,
                    s.scale_down_events,
                    s.servers_added,
                    s.servers_removed,
                    s.transient_qos_violation_pct,
                ]
                for label, s in results
            ],
            float_format="{:.2f}",
        )
    )


if __name__ == "__main__":
    main()
