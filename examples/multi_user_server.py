"""Multi-user transcoding server (the paper's Scenario II, shortened).

Simulates a batch of users with different resolution requirements arriving at
the server: each user's initial video is followed by randomly selected videos
of the same resolution.  Every user gets their own MAMUT controller; all
sessions share the 16-core server, so the controllers implicitly compete for
cores and for the package power budget.

Run with::

    python examples/multi_user_server.py
"""

from __future__ import annotations

import argparse
import logging

from repro import ExperimentRunner, mamut_factory
from repro.manager.scenario import scenario_label, scenario_two
from repro.metrics.report import format_table

from repro.telemetry import LOG_LEVELS, configure_logging

_LOG = logging.getLogger("repro.examples.multi_user_server")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="info",
        help="verbosity of the repro logger",
    )
    configure_logging(parser.parse_args().log_level)
    # Two HR users and two LR users, each transcoding an initial video
    # followed by two randomly selected videos of the same resolution.
    specs = scenario_two(num_hr=2, num_lr=2, followers=2, frames_per_video=150, seed=7)
    _LOG.info(f"Workload: {scenario_label(specs)} "
          f"({sum(spec.total_frames for spec in specs)} frames in total)")
    for spec in specs:
        names = ", ".join(video.name for video in spec.playlist)
        _LOG.info(f"  {spec.request.user_id:6s} [{spec.resolution_class.value}] -> {names}")

    runner = ExperimentRunner(power_cap_w=120.0, seed=7)
    result = runner.run(
        "MAMUT",
        mamut_factory(power_cap_w=120.0),
        specs,
        repetitions=1,
        warmup_videos=1,
    )

    _LOG.info("\n=== Server-level results (MAMUT) ===")
    _LOG.info(
        format_table(
            ["metric", "value"],
            [
                ["mean package power (W)", result.mean_power_w],
                ["mean FPS", result.mean_fps],
                ["QoS violations (Δ, %)", result.qos_violation_pct],
                ["mean threads per video", result.mean_threads],
                ["mean frequency (GHz)", result.mean_frequency_ghz],
                ["mean PSNR (dB)", result.mean_psnr_db],
            ],
            float_format="{:.2f}",
        )
    )

    _LOG.info("\nPer-resolution-class breakdown:")
    rows = []
    for resolution_class in ("HR", "LR"):
        if resolution_class in result.per_class_threads:
            rows.append(
                [
                    resolution_class,
                    result.per_class_threads[resolution_class],
                    result.per_class_frequency_ghz[resolution_class],
                    result.per_class_qos_pct[resolution_class],
                    result.per_class_psnr_db[resolution_class],
                ]
            )
    _LOG.info(format_table(["class", "Nth", "Freq (GHz)", "Δ (%)", "PSNR (dB)"], rows, "{:.2f}"))


if __name__ == "__main__":
    main()
