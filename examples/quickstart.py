"""Quickstart: transcode one HR video under MAMUT control.

Creates a synthetic 1080p sequence, wraps it in a transcoding request, lets
the MAMUT multi-agent controller manage QP / threads / frequency for it on a
simulated 16-core server, and prints the resulting QoS, quality and power
figures together with a short learning trace.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import argparse
import logging

from repro import (
    MamutConfig,
    MamutController,
    Orchestrator,
    TranscodingRequest,
    TranscodingSession,
    make_sequence,
)
from repro.metrics.qos import qos_violation_pct
from repro.metrics.report import format_table

from repro.telemetry import LOG_LEVELS, configure_logging

_LOG = logging.getLogger("repro.examples.quickstart")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="info",
        help="verbosity of the repro logger",
    )
    configure_logging(parser.parse_args().log_level)
    # 1. The workload: a synthetic stand-in for the JCT-VC "Cactus" sequence.
    sequence = make_sequence("Cactus", num_frames=1200, seed=0)
    request = TranscodingRequest(user_id="alice", sequence=sequence, bandwidth_mbps=6.0)

    # 2. The controller: three cooperating Q-learning agents (QP, threads, DVFS).
    config = MamutConfig.for_request(request, power_cap_w=120.0, record_history=True)
    controller = MamutController(config)

    # 3. Run the session on a simulated 16-core / 32-thread server.
    session = TranscodingSession(request, controller)
    result = Orchestrator([session]).run()
    summary = result.summary()
    per_session = summary.sessions["alice"]

    _LOG.info("=== MAMUT quickstart: one HR video ===")
    _LOG.info(
        format_table(
            ["metric", "value"],
            [
                ["frames transcoded", per_session.frames],
                ["mean FPS", per_session.mean_fps],
                ["QoS violations (Δ, %)", per_session.qos_violation_pct],
                ["mean PSNR (dB)", per_session.mean_psnr_db],
                ["mean bitrate (Mb/s)", per_session.mean_bitrate_mbps],
                ["mean threads", per_session.mean_threads],
                ["mean frequency (GHz)", per_session.mean_frequency_ghz],
                ["mean server power (W)", summary.mean_power_w],
            ],
            float_format="{:.2f}",
        )
    )

    # 4. Learning visibly improves QoS: compare the first and last thirds.
    records = result.records_by_session["alice"]
    third = len(records) // 3
    _LOG.info("\nQoS violations by phase of the run:")
    _LOG.info(f"  first third : {qos_violation_pct(records[:third]):5.1f} %")
    _LOG.info(f"  last third  : {qos_violation_pct(records[-third:]):5.1f} %")

    # 5. Peek at the agents' knowledge.
    _LOG.info("\nAgent summaries:")
    for name, info in controller.summary().items():
        _LOG.info(
            f"  {name:8s} actions={info['actions']:2d} "
            f"visited_states={info['visited_states']:3d} q_entries={info['q_entries']}"
        )


if __name__ == "__main__":
    main()
