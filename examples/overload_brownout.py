"""Riding out a flash crowd: shed load, drop the impatient, or brown out.

The autoscaling example grows the fleet when traffic surges; this one keeps
the fleet *fixed* and explores the other side of overload control — what to
do when capacity cannot (or should not) grow.  The same flash crowd is
served three times from identical seeds:

* **reject** — classic capacity admission with a shallow queue: users are
  turned away at the door;
* **patient queue** — a deep queue with per-request patience deadlines:
  users wait, and the ones who wait too long are dropped (they queued *and*
  were shed — the worst experience of all);
* **brownout** — under sustained pressure the fleet degrades quality
  (higher QP, relaxed FPS target) for newly admitted sessions and unlocks
  extra session slots, serving everyone at a lower bitrate instead of
  shedding anyone; hysteresis restores full quality once the crowd passes.

Run with::

    python examples/overload_brownout.py
"""

from __future__ import annotations

import argparse
import logging

from repro.cluster import (
    BrownoutController,
    CapacityThreshold,
    ClusterOrchestrator,
    FlashCrowdTraffic,
    WorkloadGenerator,
)
from repro.manager.factories import static_factory
from repro.metrics.report import format_table

from repro.telemetry import LOG_LEVELS, configure_logging

_LOG = logging.getLogger("repro.examples.overload_brownout")

SERVERS = 2
SESSIONS_PER_SERVER = 4
FRAMES_PER_VIDEO = 16
DURATION = 100
PATIENCE = 10
SEED = 7


def make_workload(patience):
    traffic = FlashCrowdTraffic(
        base_rate=0.25, peak_multiplier=6.0, start=40, duration=25
    )
    return WorkloadGenerator(
        traffic,
        seed=SEED,
        frames_per_video=FRAMES_PER_VIDEO,
        patience_steps=patience,
    )


def run_config(label, *, max_queue, patience, brownout, extra_sessions=0):
    cluster = ClusterOrchestrator(
        SERVERS,
        make_workload(patience),
        admission=CapacityThreshold(
            max_sessions_per_server=SESSIONS_PER_SERVER,
            max_queue=max_queue,
            brownout_extra_sessions=extra_sessions,
        ),
        controller_factory=static_factory(qp=32, threads=4, frequency_ghz=3.2),
        seed=SEED,
        brownout=brownout,
    )
    result = cluster.run(DURATION)
    return label, result, result.summary()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="info",
        help="verbosity of the repro logger",
    )
    configure_logging(parser.parse_args().log_level)
    brownout = BrownoutController(
        sessions_per_server=SESSIONS_PER_SERVER,
        enter_queue_per_server=2.0,
        enter_steps=2,
        exit_steps=6,
        fps_relax=0.75,
        degraded_factory=static_factory(qp=40, threads=2, frequency_ghz=3.2),
    )
    runs = [
        run_config("reject", max_queue=6, patience=None, brownout=None),
        run_config("patient queue", max_queue=64, patience=PATIENCE, brownout=None),
        run_config(
            "brownout",
            max_queue=64,
            patience=PATIENCE,
            brownout=brownout,
            extra_sessions=10,
        ),
    ]

    _LOG.info("=== Flash crowd, fixed two-server fleet, identical seeds ===")
    _LOG.info(
        format_table(
            [
                "config",
                "arrivals",
                "served",
                "rejected",
                "dropped",
                "abandoned",
                "degraded",
                "Δ (%)",
            ],
            [
                [
                    label,
                    s.arrivals,
                    s.admitted,
                    s.rejected,
                    s.dropped,
                    s.abandoned,
                    s.degraded_sessions,
                    s.qos_violation_pct,
                ]
                for label, _, s in runs
            ],
            float_format="{:.2f}",
        )
    )

    _, result, summary = runs[-1]
    active = [s for s in result.fleet_trace if s.brownout_level > 0]
    if active:
        _LOG.info(
            f"\nBrownout active for {summary.brownout_steps} steps "
            f"(steps {active[0].step}-{active[-1].step}); "
            f"{summary.degraded_sessions} of {summary.admitted} sessions "
            "served degraded, nobody shed."
        )
    _LOG.info("\nPer-step trace around the burst (brownout config):")
    window = [s for s in result.fleet_trace if 35 <= s.step <= 80 and s.step % 5 == 0]
    _LOG.info(
        format_table(
            ["step", "arrivals", "queue", "active", "brownout", "dropped"],
            [
                [s.step, s.arrivals, s.queue_length, s.active_sessions,
                 s.brownout_level, s.dropped]
                for s in window
            ],
        )
    )


if __name__ == "__main__":
    main()
