"""Pre-trained MAMUT, viewer-side playback quality, and package temperature.

Demonstrates three extension features of the library on one workflow:

1. **Pre-training** — MAMUT is trained once per resolution class on catalog
   content; the learned Q-tables are then cloned into the per-user
   controllers of a new experiment (`repro.manager.pretrain`).
2. **Playback buffering** — the per-frame transcoding times are fed into a
   client playback-buffer model to report viewer-facing stalls, not just
   per-frame FPS violations (`repro.video.buffer`).
3. **Thermal modelling** — the server power trace is integrated into a
   package temperature trace with a lumped RC model (`repro.platform.thermal`).

Run with::

    python examples/pretrained_streaming.py
"""

from __future__ import annotations

import argparse
import logging

from repro.manager.orchestrator import Orchestrator
from repro.manager.pretrain import pretrain_mamut, pretrained_mamut_factory
from repro.manager.scenario import scenario_one
from repro.manager.session import TranscodingSession
from repro.metrics.report import format_table
from repro.platform.thermal import temperature_trace
from repro.video.buffer import playback_stats_from_records
from repro.video.sequence import ResolutionClass

from repro.telemetry import LOG_LEVELS, configure_logging

_LOG = logging.getLogger("repro.examples.pretrained_streaming")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="info",
        help="verbosity of the repro logger",
    )
    configure_logging(parser.parse_args().log_level)
    _LOG.info("Pre-training MAMUT on HR and LR catalog content (done once, reusable)...")
    knowledge = {
        ResolutionClass.HR: pretrain_mamut(ResolutionClass.HR, frames=1500, seed=0),
        ResolutionClass.LR: pretrain_mamut(ResolutionClass.LR, frames=1500, seed=0),
    }
    factory = pretrained_mamut_factory(knowledge)

    specs = scenario_one(num_hr=1, num_lr=1, num_frames=300, seed=11)
    sessions = [
        TranscodingSession(
            request=spec.request,
            controller=factory(spec.request, seed=index),
            playlist=spec.playlist,
        )
        for index, spec in enumerate(specs)
    ]
    result = Orchestrator(sessions).run()
    summary = result.summary()

    _LOG.info("\n=== Transcoding results with pre-trained controllers ===")
    rows = [
        [
            session_id,
            s.mean_fps,
            s.qos_violation_pct,
            s.mean_psnr_db,
            s.mean_threads,
            s.mean_frequency_ghz,
        ]
        for session_id, s in summary.sessions.items()
    ]
    _LOG.info(format_table(["user", "FPS", "Δ (%)", "PSNR", "Nth", "Freq"], rows, "{:.2f}"))

    _LOG.info("\n=== Viewer-side playback quality (client buffer model) ===")
    rows = []
    for session_id, records in result.records_by_session.items():
        stats = playback_stats_from_records(records)
        rows.append(
            [
                session_id,
                stats.startup_delay_s,
                stats.stall_count,
                stats.stall_time_s,
                100.0 * stats.stall_ratio,
            ]
        )
    _LOG.info(
        format_table(
            ["user", "startup (s)", "stalls", "stall time (s)", "stall ratio (%)"],
            rows,
            "{:.2f}",
        )
    )

    temperatures = temperature_trace(result.power_samples)
    _LOG.info("\n=== Package thermals (lumped RC model) ===")
    _LOG.info(f"  mean power       : {summary.mean_power_w:6.1f} W")
    _LOG.info(f"  peak temperature : {max(temperatures):6.1f} °C")
    _LOG.info(f"  final temperature: {temperatures[-1]:6.1f} °C")


if __name__ == "__main__":
    main()
