"""Compare MAMUT against the paper's baselines on the same workload.

Reproduces, on a reduced scale, the comparison behind the paper's Fig. 4 and
Table II: the heuristic controller (threads→FPS, QP→PSNR, chip-wide DVFS for
power capping), the mono-agent Q-learning controller (coarse joint action
space), and MAMUT (three cooperating agents) serve the same mix of HR and LR
videos, and their QoS, power and operating points are reported side by side.

Run with::

    python examples/compare_controllers.py
"""

from __future__ import annotations

import argparse
import logging

from repro import ExperimentRunner, heuristic_factory, mamut_factory, monoagent_factory
from repro.manager.scenario import scenario_label, scenario_one
from repro.metrics.report import format_table

from repro.telemetry import LOG_LEVELS, configure_logging

_LOG = logging.getLogger("repro.examples.compare_controllers")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="info",
        help="verbosity of the repro logger",
    )
    configure_logging(parser.parse_args().log_level)
    specs = scenario_one(num_hr=1, num_lr=1, num_frames=360, seed=3)
    _LOG.info(f"Workload: Scenario I, {scenario_label(specs)}, 360 frames per video")

    runner = ExperimentRunner(power_cap_w=120.0, seed=3)
    results = runner.compare(
        {
            "Heuristic": heuristic_factory(),
            "MonoAgent": monoagent_factory(),
            "MAMUT": mamut_factory(),
        },
        specs,
        repetitions=2,
        warmup_videos=1,
    )

    rows = [
        [
            label,
            r.qos_violation_pct,
            r.mean_power_w,
            r.mean_fps,
            r.mean_threads,
            r.mean_frequency_ghz,
            r.mean_psnr_db,
        ]
        for label, r in results.items()
    ]
    _LOG.info("\n=== Controller comparison (averages over 2 repetitions) ===")
    _LOG.info(
        format_table(
            ["controller", "Δ (%)", "Power (W)", "FPS", "Nth", "Freq (GHz)", "PSNR (dB)"],
            rows,
            float_format="{:.2f}",
        )
    )

    mamut = results["MAMUT"]
    heuristic = results["Heuristic"]
    power_saving = 100.0 * (1.0 - mamut.mean_power_w / heuristic.mean_power_w)
    if heuristic.qos_violation_pct > 0 and mamut.qos_violation_pct > 0:
        qos_factor = heuristic.qos_violation_pct / mamut.qos_violation_pct
        qos_text = f"{qos_factor:.1f}x fewer QoS violations"
    else:
        qos_text = "no QoS violations"
    _LOG.info(
        f"\nMAMUT vs heuristic: {power_saving:.1f}% power reduction, {qos_text} "
        "(the paper reports up to 24% and 8x on its full-scale testbed)."
    )


if __name__ == "__main__":
    main()
