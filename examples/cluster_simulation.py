"""A transcoding fleet riding out a flash crowd on top of diurnal traffic.

Simulates a four-server cluster serving a day/night arrival pattern with a
viral burst in the evening: requests arrive over time, the capacity-threshold
admission policy queues or turns away what the fleet cannot hold, and the
least-loaded dispatcher spreads admitted sessions across the servers.  Every
session runs its own MAMUT controller, exactly as on the paper's single
server.

Run with::

    python examples/cluster_simulation.py
"""

from __future__ import annotations

import argparse
import logging

from repro.cluster import (
    CapacityThreshold,
    ClusterOrchestrator,
    CompositeTraffic,
    DiurnalTraffic,
    FlashCrowdTraffic,
    LeastLoaded,
    WorkloadGenerator,
)
from repro.metrics.report import format_table

from repro.telemetry import LOG_LEVELS, configure_logging

_LOG = logging.getLogger("repro.examples.cluster_simulation")

SERVERS = 4
DURATION = 400  # arrival window, in cluster steps


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="info",
        help="verbosity of the repro logger",
    )
    configure_logging(parser.parse_args().log_level)
    # A "day" of 400 steps with a 4x flash crowd during the evening peak.
    traffic = CompositeTraffic(
        [
            DiurnalTraffic(base_rate=1.0, amplitude=0.8, period=DURATION),
            FlashCrowdTraffic(base_rate=0.3, peak_multiplier=4.0, start=240, duration=60),
        ]
    )
    workload = WorkloadGenerator(
        traffic, seed=42, hr_fraction=0.4, frames_per_video=48
    )
    cluster = ClusterOrchestrator(
        SERVERS,
        workload,
        admission=CapacityThreshold(max_sessions_per_server=4, max_queue=12),
        dispatcher=LeastLoaded(),
        seed=42,
    )
    summary = cluster.run(DURATION).summary()

    _LOG.info(f"=== Fleet of {SERVERS} servers, diurnal + flash-crowd traffic ===")
    _LOG.info(
        format_table(
            ["metric", "value"],
            [
                ["arrivals", summary.arrivals],
                ["admitted", summary.admitted],
                ["rejected", summary.rejected],
                ["abandoned in queue", summary.abandoned],
                ["rejection rate (%)", 100.0 * summary.rejection_rate],
                ["mean queue wait (steps)", summary.mean_queue_wait_steps],
                ["fleet power (W)", summary.fleet_mean_power_w],
                ["watts per session", summary.watts_per_session],
                ["QoS violations (Δ, %)", summary.qos_violation_pct],
            ],
            float_format="{:.2f}",
        )
    )

    _LOG.info("\nPer-server breakdown:")
    _LOG.info(
        format_table(
            ["server", "sessions", "util (%)", "power (W)", "Δ (%)"],
            [
                [
                    f"srv-{server.server_index}",
                    server.sessions_served,
                    100.0 * server.utilization,
                    server.mean_power_w,
                    server.qos_violation_pct,
                ]
                for server in summary.servers
            ],
            float_format="{:.1f}",
        )
    )


if __name__ == "__main__":
    main()
