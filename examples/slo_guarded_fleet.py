"""SLO-guarded fleet: declare promises, watch them burn, audit the trace.

A flash crowd hits an undersized fleet while three service-level
objectives watch from the observe-only telemetry path:

* ``queue-wait-p95`` — windowed p95 queue wait stays at or under 4 steps;
* ``shed-rate`` — at most 10% of windowed arrivals are shed
  (rejected + dropped + failed);
* ``qos-violation-rate`` — at most 40% of windowed frames violate QoS.

Each objective is judged every step over a rolling window and spends an
error budget while in breach; breach *entries* land in the request trace
as ``slo_breach`` spans.  After the run, the same span stream is fed to
the trace analytics (`analyze_trace`) to reconstruct per-request
lifecycles, break latency down into queue wait / service / retry
overhead, and reconcile the whole view against the run's summary ledger —
proving the trace and the ledger tell one story.

Because SLO evaluation draws no randomness and mutates nothing, the
guarded run is bitwise identical to an unguarded one — which this example
also demonstrates.

Run with::

    python examples/slo_guarded_fleet.py
"""

from __future__ import annotations

import argparse
import logging

from repro.cluster import (
    CapacityThreshold,
    ClusterOrchestrator,
    FlashCrowdTraffic,
    WorkloadGenerator,
)
from repro.metrics.report import format_table
from repro.telemetry import (
    LOG_LEVELS,
    ListTraceSink,
    QueueWaitObjective,
    ShedRateObjective,
    TelemetryConfig,
    ViolationRateObjective,
    analyze_trace,
    configure_logging,
)

_LOG = logging.getLogger("repro.examples.slo_guarded_fleet")

SERVERS = 3
DURATION = 60
SEED = 4

OBJECTIVES = (
    QueueWaitObjective(
        name="queue-wait-p95", max_steps=4.0, window_steps=16,
        error_budget_pct=10.0,
    ),
    ShedRateObjective(
        name="shed-rate", max_pct=10.0, window_steps=16, error_budget_pct=10.0
    ),
    ViolationRateObjective(
        name="qos-violation-rate", max_pct=40.0, window_steps=16,
        error_budget_pct=10.0,
    ),
)


def make_cluster() -> ClusterOrchestrator:
    workload = WorkloadGenerator(
        FlashCrowdTraffic(
            0.8, peak_multiplier=4.0, start=DURATION // 3, duration=DURATION // 5
        ),
        seed=SEED,
        frames_per_video=24,
        patience_steps=10,
    )
    return ClusterOrchestrator(
        SERVERS,
        workload,
        admission=CapacityThreshold(max_sessions_per_server=3, max_queue=8),
        seed=SEED,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="info",
        help="verbosity of the repro logger",
    )
    configure_logging(parser.parse_args().log_level)

    # The unguarded control run: same seeds, no telemetry at all.
    baseline = make_cluster().run(DURATION).summary()

    # The guarded run: SLO objectives + a request trace, same seeds.
    sink = ListTraceSink()
    cluster = make_cluster()
    result = cluster.run(
        DURATION, telemetry=TelemetryConfig(trace_sink=sink, slo=OBJECTIVES)
    )
    summary = result.summary()

    identical = baseline.to_dict() == summary.to_dict()
    _LOG.info(
        "=== Observe-only contract: guarded run identical to baseline: %s ===",
        identical,
    )

    _LOG.info("\nSLO report (%d steps, flash crowd mid-run):", result.steps)
    _LOG.info(
        format_table(
            ["objective", "breach steps", "budget used (%)", "max burn",
             "worst", "verdict"],
            [
                [
                    row["name"],
                    f"{row['breach_steps']}/{row['steps']}",
                    row["budget_consumed_pct"],
                    row["max_burn_rate"],
                    row["worst_value"],
                    "OK" if row["healthy"] else "BREACHED",
                ]
                for row in cluster.telemetry.slo.report()
            ],
            float_format="{:.2f}",
        )
    )

    analysis = analyze_trace(sink)
    _LOG.info("\nBreach entries in the trace:")
    for span in analysis.slo_breaches:
        _LOG.info(
            "  step %3d  %-18s value %6.2f > %.2f (burn %.2f)",
            span["step"], span["slo"], span["value"], span["threshold"],
            span["burn_rate"],
        )

    _LOG.info("\nLatency breakdown from the span stream (steps):")
    _LOG.info(
        format_table(
            ["population", "n", "mean", "p50", "p95", "p99", "max"],
            [
                [label, s.count, s.mean, s.p50, s.p95, s.p99, s.max]
                for label, s in [
                    ("queue wait", analysis.wait_stats()),
                    ("service", analysis.service_stats()),
                    ("end-to-end", analysis.end_to_end_stats()),
                ]
            ],
            float_format="{:.2f}",
        )
    )

    mismatches = analysis.reconcile(summary)
    _LOG.info(
        "\nTrace-vs-ledger reconciliation: %s",
        "OK" if not mismatches else f"MISMATCH {mismatches}",
    )


if __name__ == "__main__":
    main()
