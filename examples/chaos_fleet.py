"""Crash-and-recover: a fleet that loses servers and keeps its users.

The other cluster examples assume servers stay up.  This one injects
seeded chaos — servers crash with exponentially distributed uptimes and
come back after a mean-time-to-recovery — and shows the recovery machinery
at work: sessions aboard a crashed server are salvaged, their learned
controller state snapshotted and migrated to a replacement, and the users
re-admitted under bounded retries with exponential backoff.  An autoscaler
watches healthy (not just provisioned) capacity, so lost servers also show
up as lost capacity.

The same fault schedule is served twice from identical seeds:

* **shed** — ``max_retries=0``: every session on a crashed server is lost;
* **recover** — ``max_retries=3``: salvaged sessions ride out the crash.

Run with::

    python examples/chaos_fleet.py
"""

from __future__ import annotations

import argparse
import logging

from repro.cluster import (
    CapacityThreshold,
    ClusterOrchestrator,
    FaultConfig,
    PoissonTraffic,
    ReactiveThreshold,
    WorkloadGenerator,
)
from repro.metrics.report import format_table
from repro.telemetry import LOG_LEVELS, configure_logging

_LOG = logging.getLogger("repro.examples.chaos_fleet")

SERVERS = 3
SESSIONS_PER_SERVER = 3
DURATION = 80
SEED = 11
FAULT_SEED = 9


def make_workload():
    return WorkloadGenerator(
        PoissonTraffic(0.5),
        seed=SEED,
        playlist_videos=2,
        frames_per_video=10,
        patience_steps=12,
    )


def run_config(label, *, max_retries):
    cluster = ClusterOrchestrator(
        SERVERS,
        make_workload(),
        admission=CapacityThreshold(
            max_sessions_per_server=SESSIONS_PER_SERVER, max_queue=8
        ),
        seed=SEED,
        autoscaler=ReactiveThreshold(
            sessions_per_server=SESSIONS_PER_SERVER, scale_down_cooldown_steps=10
        ),
        max_servers=6,
        provision_warmup_steps=2,
        faults=FaultConfig(
            crash_mtbf_steps=30.0,
            crash_mttr_steps=6.0,
            straggler_mtbf_steps=80.0,
            straggler_duration_steps=4.0,
            max_retries=max_retries,
            retry_backoff_steps=1,
            seed=FAULT_SEED,
        ),
    )
    result = cluster.run(DURATION)
    return label, result, result.summary()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="info",
        help="verbosity of the repro logger",
    )
    configure_logging(parser.parse_args().log_level)

    runs = [
        run_config("shed", max_retries=0),
        run_config("recover", max_retries=3),
    ]

    _LOG.info("=== Same crash schedule, two responses, identical seeds ===")
    _LOG.info(
        format_table(
            [
                "config",
                "arrivals",
                "served",
                "failed",
                "retried",
                "crashes",
                "stragglers",
                "healthy (mean)",
            ],
            [
                [
                    label,
                    s.arrivals,
                    s.admitted - s.failed,
                    s.failed,
                    s.retried,
                    s.server_crashes,
                    s.stragglers,
                    s.mean_healthy_servers,
                ]
                for label, _, s in runs
            ],
            float_format="{:.2f}",
        )
    )

    _, result, summary = runs[-1]
    _LOG.info("\nFault timeline (recover config):")
    _LOG.info(
        format_table(
            ["step", "event", "server", "sessions lost", "detail"],
            [
                [e.step, e.kind, e.server, e.sessions_lost, e.detail]
                for e in result.fault_events
            ],
        )
    )

    crashes = [e for e in result.fault_events if e.kind == "crash"]
    if crashes:
        first = crashes[0]
        around = [
            s
            for s in result.fleet_trace
            if first.step - 2 <= s.step <= first.step + 12
        ]
        _LOG.info(
            f"\nFleet health around the first crash (step {first.step}, "
            f"server {first.server}, {first.sessions_lost} sessions aboard):"
        )
        _LOG.info(
            format_table(
                ["step", "healthy", "degraded", "failed", "recovering", "queue"],
                [
                    [
                        s.step,
                        s.healthy_servers,
                        s.degraded_servers,
                        s.failed_servers,
                        s.recovering_servers,
                        s.queue_length,
                    ]
                    for s in around
                ],
            )
        )
    migrated = sorted(
        key
        for per_server in result.records_by_server
        for key in per_server
        if "#r" in key
    )
    _LOG.info(
        f"\n{summary.retried} sessions migrated to replacement servers: "
        f"{', '.join(migrated) if migrated else 'none'}"
    )


if __name__ == "__main__":
    main()
